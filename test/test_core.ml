module File_spec = Pindisk.File_spec
module Bandwidth = Pindisk.Bandwidth
module Program = Pindisk.Program
module Generalized = Pindisk.Generalized
module Bounds = Pindisk.Bounds
module Bc = Pindisk_algebra.Bc
module Task = Pindisk_pinwheel.Task
module Schedule = Pindisk_pinwheel.Schedule
module Verify = Pindisk_pinwheel.Verify
module Q = Pindisk_util.Q

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The paper's Figure 5/6 toy: files A (5 blocks) and B (3 blocks) in an
   8-slot period laid out A1 B1 A2 A3 B2 A4 B3 A5. *)
let toy_layout =
  [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]

let toy_flat () = Program.of_layout toy_layout ~capacities:[ (0, 5); (1, 3) ]
let toy_ida () = Program.of_layout toy_layout ~capacities:[ (0, 10); (1, 6) ]

(* ------------------------------------------------------------------ *)
(* File_spec                                                           *)
(* ------------------------------------------------------------------ *)

let test_file_make () =
  let f = File_spec.make ~id:1 ~blocks:5 ~latency:10 ~tolerance:2 () in
  Alcotest.(check string) "default name" "F1" f.File_spec.name;
  check_int "default capacity m+r" 7 f.File_spec.capacity;
  Alcotest.check_raises "capacity too small"
    (Invalid_argument "File_spec.make: capacity below blocks + tolerance")
    (fun () ->
      ignore (File_spec.make ~id:0 ~blocks:5 ~latency:1 ~tolerance:2 ~capacity:6 ()));
  Alcotest.check_raises "capacity above IDA limit"
    (Invalid_argument "File_spec.make: capacity exceeds the 255-block IDA limit")
    (fun () ->
      ignore (File_spec.make ~id:0 ~blocks:200 ~latency:1 ~capacity:256 ()))

let test_file_to_task () =
  let f = File_spec.make ~id:3 ~blocks:4 ~latency:5 ~tolerance:1 () in
  let t = File_spec.to_task f ~bandwidth:2 in
  check_int "a = m + r" 5 t.Task.a;
  check_int "b = B*T" 10 t.Task.b;
  check_int "id" 3 t.Task.id;
  check_int "window" 10 (File_spec.window f ~bandwidth:2);
  let tight = File_spec.make ~id:3 ~blocks:4 ~latency:3 ~tolerance:1 () in
  Alcotest.check_raises "bandwidth too low"
    (Invalid_argument
       "File_spec.to_task: F3 needs 5 blocks in a 3-slot window; raise the bandwidth")
    (fun () -> ignore (File_spec.to_task tight ~bandwidth:1 |> ignore))

(* ------------------------------------------------------------------ *)
(* Bandwidth                                                           *)
(* ------------------------------------------------------------------ *)

let awacs_files =
  (* AWACS-flavoured: aircraft positions every 0.4s is awkward in integer
     seconds; scale to slots-as-deciseconds elsewhere. Here: sizes/latencies
     chosen to exercise the equations. *)
  [
    File_spec.make ~id:0 ~blocks:4 ~latency:4 ~tolerance:1 ();
    File_spec.make ~id:1 ~blocks:2 ~latency:6 ();
    File_spec.make ~id:2 ~blocks:6 ~latency:12 ~tolerance:2 ();
  ]

let test_demand_and_required () =
  (* demand = 5/4 + 2/6 + 8/12 = 1.25 + 0.333 + 0.667 = 2.25 = 9/4. *)
  Alcotest.(check string) "demand" "9/4" (Q.to_string (Bandwidth.demand awacs_files));
  (* required = ceil(10/7 * 9/4) = ceil(90/28) = ceil(3.214) = 4. *)
  check_int "equation 2" 4 (Bandwidth.required awacs_files)

let test_required_equation1_no_faults () =
  (* All tolerances zero: Equation 1. demand = 4/4 + 2/6 + 6/12 = 11/6;
     required = ceil(110/42) = 3. *)
  let files =
    [
      File_spec.make ~id:0 ~blocks:4 ~latency:4 ();
      File_spec.make ~id:1 ~blocks:2 ~latency:6 ();
      File_spec.make ~id:2 ~blocks:6 ~latency:12 ();
    ]
  in
  check_int "equation 1" 3 (Bandwidth.required files)

let test_required_bandwidth_schedulable () =
  check_bool "eq-2 bandwidth schedulable" true
    (Bandwidth.schedulable ~bandwidth:(Bandwidth.required awacs_files) awacs_files)

let test_minimum () =
  match Bandwidth.minimum awacs_files with
  | None -> Alcotest.fail "minimum bandwidth must exist"
  | Some (b, sched) ->
      check_bool "at most eq-2 bound" true (b <= Bandwidth.required awacs_files);
      check_bool "at least the demand" true
        Q.(Q.of_int b >= Bandwidth.demand awacs_files);
      check_bool "schedule verifies" true
        (Verify.satisfies sched (Bandwidth.tasks ~bandwidth:b awacs_files));
      check_bool "overhead within 43%%" true
        (Bandwidth.overhead ~achieved:(Bandwidth.required awacs_files) awacs_files
         <= 10.0 /. 7.0 +. 1.0 /. Q.to_float (Bandwidth.demand awacs_files) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let test_of_layout_toy () =
  let p = toy_ida () in
  check_int "period 8" 8 (Program.period p);
  check_int "data cycle 16 (Figure 6)" 16 (Program.data_cycle p);
  Alcotest.(check (list int)) "files" [ 0; 1 ] (Program.files p);
  check_int "A occurrences" 5 (Program.occurrences_per_period p 0);
  (* Second period carries the next dispersed blocks: slot 8 is A6. *)
  Alcotest.(check (option (pair int int))) "slot 0 = A1" (Some (0, 0)) (Program.block_at p 0);
  Alcotest.(check (option (pair int int))) "slot 8 = A6" (Some (0, 5)) (Program.block_at p 8);
  Alcotest.(check (option (pair int int))) "slot 9 = B4" (Some (1, 3)) (Program.block_at p 9);
  Alcotest.(check (option (pair int int))) "slot 16 = A1 again" (Some (0, 0)) (Program.block_at p 16)

let test_of_layout_flat_cycle () =
  let p = toy_flat () in
  check_int "flat data cycle = period" 8 (Program.data_cycle p);
  Alcotest.(check (option (pair int int))) "slot 8 repeats A1" (Some (0, 0)) (Program.block_at p 8)

let test_of_layout_rejects_bad_cycling () =
  Alcotest.check_raises "block indices must cycle"
    (Invalid_argument
       "Program.of_layout: file 0 occurrence 1 carries block 0, expected 1 \
        (capacity 5)") (fun () ->
      ignore (Program.of_layout [ (0, 0); (0, 0) ] ~capacities:[ (0, 5) ]))

let test_of_layout_idle () =
  let p = Program.of_layout [ (0, 0); (-1, 0); (0, 1) ] ~capacities:[ (0, 2) ] in
  Alcotest.(check (option (pair int int))) "idle slot" None (Program.block_at p 1);
  check_int "delta skips idle" 2
    (match Program.delta p 0 with Some d -> d | None -> -1)

let test_flat_builder () =
  let p = Program.flat [ (0, 5); (1, 3) ] in
  check_int "period 8" 8 (Program.period p);
  check_int "A slots" 5 (Program.occurrences_per_period p 0);
  check_int "B slots" 3 (Program.occurrences_per_period p 1);
  check_int "capacity A" 5 (Program.capacity p 0);
  (* Evenly spread: no file may have a gap above ceil(period / m) + 1. *)
  (match Program.delta p 0 with
  | Some d -> check_bool "A delta small" true (d <= 3)
  | None -> Alcotest.fail "A occurs");
  match Program.delta p 1 with
  | Some d -> check_bool "B delta small" true (d <= 4)
  | None -> Alcotest.fail "B occurs"

let test_aida_flat_builder () =
  let p = Program.aida_flat [ (0, 5, 10); (1, 3, 6) ] in
  check_int "period still 8" 8 (Program.period p);
  check_int "data cycle 16" 16 (Program.data_cycle p);
  check_int "capacity A" 10 (Program.capacity p 0);
  Alcotest.check_raises "capacity below size"
    (Invalid_argument "Program.aida_flat: capacity below size") (fun () ->
      ignore (Program.aida_flat [ (0, 5, 4) ]))

let test_pinwheel_builder () =
  match Program.pinwheel ~bandwidth:(Bandwidth.required awacs_files) awacs_files with
  | None -> Alcotest.fail "pinwheel program must exist at eq-2 bandwidth"
  | Some p ->
      (* Every file's pinwheel condition must hold on the program schedule. *)
      let sys =
        Bandwidth.tasks ~bandwidth:(Bandwidth.required awacs_files) awacs_files
      in
      check_bool "schedule satisfies tasks" true
        (Verify.satisfies (Program.schedule p) sys);
      (* Capacities come from the file specs. *)
      check_int "capacity of F0" 5 (Program.capacity p 0)

let test_auto_builder () =
  match Program.auto awacs_files with
  | None -> Alcotest.fail "auto program must exist"
  | Some (b, p) ->
      check_bool "bandwidth sane" true (b >= 1);
      check_bool "satisfies" true
        (Verify.satisfies (Program.schedule p) (Bandwidth.tasks ~bandwidth:b awacs_files))

let test_block_at_distinct_consecutive () =
  (* Consecutive transmissions of a file always carry distinct blocks when
     capacity > 1 (the heart of Lemma 2). *)
  let p = toy_ida () in
  let last = Hashtbl.create 4 in
  for t = 0 to (3 * Program.data_cycle p) - 1 do
    match Program.block_at p t with
    | Some (f, idx) ->
        (match Hashtbl.find_opt last f with
        | Some prev ->
            check_bool "consecutive blocks distinct" true (prev <> idx)
        | None -> ());
        Hashtbl.replace last f idx
    | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Generalized                                                         *)
(* ------------------------------------------------------------------ *)

let test_generalized_program () =
  let specs =
    [
      Generalized.spec (Bc.make ~file:0 ~m:2 ~d:[ 8; 10 ]);
      Generalized.spec ~capacity:6 (Bc.make ~file:1 ~m:1 ~d:[ 6; 9 ]);
    ]
  in
  match Generalized.program specs with
  | None -> Alcotest.fail "generalized program must exist"
  | Some p ->
      (* The projected schedule must satisfy the original bcs: re-verify
         from the outside too. *)
      List.iter
        (fun spec ->
          check_bool "bc satisfied" true
            (Bc.check (Program.schedule p) spec.Generalized.bc = None))
        specs;
      check_int "capacity default m+r" 3 (Program.capacity p 0);
      check_int "explicit capacity" 6 (Program.capacity p 1)

let test_generalized_densities () =
  let specs = [ Generalized.spec (Bc.make ~file:0 ~m:4 ~d:[ 8; 9 ]) ] in
  (* Example 4: the paper reaches 3/5; our single-condition search finds
     pc(5, 9) (which implies pc(4, 8) by R2), hitting the 5/9 lower bound
     exactly. *)
  Alcotest.(check string) "compiled" "5/9" (Q.to_string (Generalized.compiled_density specs));
  Alcotest.(check string) "lower bound" "5/9"
    (Q.to_string (Generalized.density_lower_bound specs))

let test_generalized_spec_validation () =
  Alcotest.check_raises "capacity below m+r"
    (Invalid_argument "Generalized.spec: capacity below m + r") (fun () ->
      ignore (Generalized.spec ~capacity:2 (Bc.make ~file:0 ~m:2 ~d:[ 8; 10 ])))

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_bounds () =
  check_int "lemma 1" 24 (Bounds.lemma1 ~period:8 ~errors:3);
  check_int "lemma 2" 6 (Bounds.lemma2 ~delta:2 ~errors:3);
  Alcotest.(check string) "speedup 200/20-blocks example" "10"
    (Q.to_string (Bounds.speedup ~period:200 ~delta:20));
  let p = toy_ida () in
  (match Bounds.program_speedup p ~file:0 with
  | Some s -> Alcotest.(check string) "A speedup 8/2" "4" (Q.to_string s)
  | None -> Alcotest.fail "file 0 broadcast");
  check_bool "absent file" true (Bounds.program_speedup p ~file:9 = None)

(* The paper's 20-fold speedup example: 200 blocks, 10 files of 20 blocks
   each; uniform spreading gives delta = 10 and speedup 20. *)
let test_twenty_fold_speedup () =
  let files = List.init 10 (fun id -> (id, 20)) in
  let p = Program.flat files in
  check_int "period 200" 200 (Program.period p);
  List.iter
    (fun (id, _) ->
      match Bounds.program_speedup p ~file:id with
      | Some s -> check_bool "speedup = 20" true (Q.equal s (Q.of_int 20))
      | None -> Alcotest.fail "file broadcast")
    files

(* ------------------------------------------------------------------ *)
(* Block_size                                                          *)
(* ------------------------------------------------------------------ *)

module Block_size = Pindisk.Block_size

let bs_files =
  [
    Block_size.file ~id:0 ~bytes:4096 ~latency:4 ~tolerance:2 ();
    Block_size.file ~id:1 ~bytes:16384 ~latency:30 ~tolerance:1 ();
  ]

let test_block_size_tasks () =
  check_int "blocks at 1KiB" 4
    (Block_size.blocks_needed (List.hd bs_files) ~block:1024);
  (match Block_size.tasks ~byte_rate:4096 ~block:1024 bs_files with
  | Some [ t0; t1 ] ->
      check_int "F0: a = 4+2" 6 t0.Task.a;
      check_int "F0: window = 4 slots/s * 4 s" 16 t0.Task.b;
      check_int "F1: a = 16+1" 17 t1.Task.a;
      check_int "F1: window" 120 t1.Task.b
  | _ -> Alcotest.fail "two tasks expected");
  (* Block bigger than the byte rate: zero slots per second. *)
  check_bool "block > rate infeasible" true
    (Block_size.tasks ~byte_rate:512 ~block:1024 bs_files = None)

let test_block_size_largest_uniform () =
  match Block_size.largest_uniform ~byte_rate:4096 bs_files with
  | None -> Alcotest.fail "some block size must work"
  | Some (block, sched) ->
      check_bool "power of two candidate" true
        (Pindisk_util.Intmath.is_power_of_two block);
      (* The returned schedule satisfies the induced system. *)
      (match Block_size.tasks ~byte_rate:4096 ~block bs_files with
      | Some sys -> check_bool "verifies" true (Verify.satisfies sched sys)
      | None -> Alcotest.fail "winning block must induce a system");
      (* Maximality among the candidates: the next power of two fails. *)
      let bigger = 2 * block in
      check_bool "next candidate unschedulable" true
        (match Block_size.tasks ~byte_rate:4096 ~block:bigger bs_files with
        | None -> true
        | Some sys -> not (Pindisk_pinwheel.Scheduler.schedulable sys))

let test_block_size_smaller_is_more_efficient () =
  (* The paper's Section-5 observation: with tolerance > 0, halving the
     block size strictly reduces the induced density. *)
  let density block =
    match Block_size.tasks ~byte_rate:4096 ~block bs_files with
    | Some sys -> Pindisk_pinwheel.Task.system_density sys
    | None -> Q.of_int 2
  in
  check_bool "512B denser than 256B" true Q.(density 256 < density 512);
  check_bool "1KiB denser than 512B" true Q.(density 512 < density 1024)

let test_block_size_multipliers () =
  match Block_size.per_file_multipliers ~byte_rate:4096 ~base:256 bs_files with
  | None -> Alcotest.fail "base 256 must be schedulable"
  | Some (ks, sched) ->
      check_int "one multiplier per file" 2 (List.length ks);
      List.iter
        (fun (_, k) -> check_bool "k >= 1" true (k >= 1))
        ks;
      check_bool "schedule non-trivial" true (Schedule.period sched >= 1);
      (* The big relaxed file should have been granted a larger block
         multiple than floor (it has the most source blocks). *)
      check_bool "file 1 coarsened" true (List.assoc 1 ks > 1)

(* ------------------------------------------------------------------ *)
(* Designer                                                            *)
(* ------------------------------------------------------------------ *)

module Designer = Pindisk.Designer

let design_reqs =
  [
    Designer.requirement ~name:"alerts" ~id:0 ~bytes:3000 ~latency_s:4
      ~tolerance:2 ();
    Designer.requirement ~name:"bulk" ~id:1 ~bytes:60_000 ~latency_s:60 ();
  ]

let test_designer_plan () =
  match Designer.plan ~byte_rate:8192 design_reqs with
  | Error e -> Alcotest.failf "plan failed: %s" e
  | Ok plan ->
      check_bool "block size is a power of two" true
        (Pindisk_util.Intmath.is_power_of_two plan.Designer.block_size);
      check_int "slot rate consistent" plan.Designer.slot_rate
        (8192 / plan.Designer.block_size);
      (* Guarantees: every file's pinwheel condition holds on the
         program. *)
      let specs = List.map (fun fp -> fp.Designer.spec) plan.Designer.files in
      check_bool "program satisfies specs" true
        (Verify.satisfies
           (Program.schedule plan.Designer.program)
           (Bandwidth.tasks ~bandwidth:plan.Designer.bandwidth specs));
      (* Maximality among power-of-two candidates. *)
      let bigger = 2 * plan.Designer.block_size in
      if bigger <= 8192 then
        check_bool "next block size fails" true
          (match
             Designer.plan ~candidates:[ bigger ] ~byte_rate:8192 design_reqs
           with
          | Error _ -> true
          | Ok _ -> false)

let test_designer_reports_reason () =
  (* A channel too slow for the tight file: the error names a cause. *)
  match Designer.plan ~byte_rate:4 design_reqs with
  | Ok _ -> Alcotest.fail "4 B/s cannot carry 3000 B within 4 s"
  | Error reason -> check_bool "reason non-empty" true (String.length reason > 0)

let test_designer_validation () =
  Alcotest.check_raises "duplicate ids" (Invalid_argument "Designer.plan: duplicate ids")
    (fun () ->
      ignore
        (Designer.plan ~byte_rate:1024
           [
             Designer.requirement ~id:0 ~bytes:10 ~latency_s:1 ();
             Designer.requirement ~id:0 ~bytes:20 ~latency_s:2 ();
           ]))

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

module Codec = Pindisk.Codec

let test_codec_roundtrip () =
  let p = toy_ida () in
  match Codec.of_string (Codec.to_string p) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok p' ->
      check_int "period" (Program.period p) (Program.period p');
      check_int "data cycle" (Program.data_cycle p) (Program.data_cycle p');
      for t = 0 to Program.data_cycle p - 1 do
        check_bool "same slots" true (Program.block_at p t = Program.block_at p' t)
      done

let test_codec_idle_slots () =
  let p = Program.of_layout [ (0, 0); (-1, 0); (0, 1) ] ~capacities:[ (0, 2) ] in
  match Codec.of_string (Codec.to_string p) with
  | Ok p' -> check_bool "idle preserved" true (Program.block_at p' 1 = None)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_codec_rejects_garbage () =
  check_bool "bad header" true (Result.is_error (Codec.of_string "nonsense v9\nlayout 0:0"));
  check_bool "empty" true (Result.is_error (Codec.of_string ""));
  check_bool "bad token" true
    (Result.is_error
       (Codec.of_string "pindisk-program v1\ncapacity 0 2\nlayout 0:x"));
  check_bool "missing capacity" true
    (Result.is_error (Codec.of_string "pindisk-program v1\nlayout 0:0"));
  check_bool "missing layout" true
    (Result.is_error (Codec.of_string "pindisk-program v1\ncapacity 0 2"));
  (* Inconsistent cycling is re-validated on parse. *)
  check_bool "broken cycling" true
    (Result.is_error
       (Codec.of_string "pindisk-program v1\ncapacity 0 5\nlayout 0:0 0:0"))

let test_codec_file_io () =
  let p = toy_flat () in
  let path = Filename.temp_file "pindisk" ".bdp" in
  Codec.write p path;
  (match Codec.read path with
  | Ok p' -> check_int "file roundtrip period" (Program.period p) (Program.period p')
  | Error e -> Alcotest.failf "read failed: %s" e);
  Sys.remove path;
  check_bool "missing file" true (Result.is_error (Codec.read path))

let prop_codec_roundtrip_random =
  QCheck2.Test.make ~name:"codec roundtrips random aida programs" ~count:80
    QCheck2.Gen.(pair (int_range 1 4) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let files =
        List.init n (fun id ->
            let m = 1 + Random.State.int rng 4 in
            (id, m, m + Random.State.int rng 4))
      in
      let p = Program.aida_flat files in
      match Codec.of_string (Codec.to_string p) with
      | Error _ -> false
      | Ok p' ->
          let cycle = Program.data_cycle p in
          Program.data_cycle p' = cycle
          && List.for_all
               (fun t -> Program.block_at p t = Program.block_at p' t)
               (List.init cycle (fun t -> t)))

let prop_codec_never_crashes_on_garbage =
  (* Fuzz: random mutations of a valid serialization either parse to a
     program or fail cleanly with Error -- never an exception. *)
  QCheck2.Test.make ~name:"codec survives mutated input" ~count:300
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 8))
    (fun (seed, flips) ->
      let rng = Random.State.make [| seed |] in
      let base = Codec.to_string (toy_ida ()) in
      let b = Bytes.of_string base in
      for _ = 1 to flips do
        let i = Random.State.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr (32 + Random.State.int rng 95))
      done;
      match Codec.of_string (Bytes.to_string b) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* qcheck properties *)

let prop_bandwidth_bounds_ordered =
  QCheck2.Test.make ~name:"demand <= minimum <= required ordering" ~count:80
    QCheck2.Gen.(pair (int_range 1 5) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let files =
        List.init n (fun id ->
            File_spec.make ~id
              ~blocks:(1 + Random.State.int rng 5)
              ~latency:(2 + Random.State.int rng 12)
              ~tolerance:(Random.State.int rng 3)
              ())
      in
      let required = Bandwidth.required files in
      match Bandwidth.minimum files with
      | None -> false (* must always exist within the search bound *)
      | Some (b, _) ->
          (* demand <= b (b is a real bandwidth) and b within the search
             ceiling; required covers demand with the 10/7 factor. *)
          Q.( <= ) (Bandwidth.demand files) (Q.of_int b)
          && b <= 2 * required
          && Q.( <= ) (Bandwidth.demand files) (Q.of_int required))

let prop_pinwheel_programs_meet_conditions =
  QCheck2.Test.make ~name:"pinwheel programs satisfy every file's window" ~count:60
    QCheck2.Gen.(pair (int_range 1 5) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let files =
        List.init n (fun id ->
            File_spec.make ~id
              ~blocks:(1 + Random.State.int rng 5)
              ~latency:(2 + Random.State.int rng 10)
              ~tolerance:(Random.State.int rng 3)
              ())
      in
      match Program.auto files with
      | None -> false (* must always succeed within 2x the eq-2 bound *)
      | Some (b, p) ->
          Verify.satisfies (Program.schedule p) (Bandwidth.tasks ~bandwidth:b files))

let prop_data_cycle_periodicity =
  QCheck2.Test.make ~name:"block_at repeats exactly at the data cycle" ~count:60
    QCheck2.Gen.(pair (int_range 1 4) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let files =
        List.init n (fun id ->
            let m = 1 + Random.State.int rng 4 in
            (id, m, m + Random.State.int rng 4))
      in
      let p = Program.aida_flat files in
      let cycle = Program.data_cycle p in
      let ok = ref true in
      for t = 0 to cycle - 1 do
        if Program.block_at p t <> Program.block_at p (t + cycle) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "core"
    [
      ( "file-spec",
        [
          Alcotest.test_case "make" `Quick test_file_make;
          Alcotest.test_case "to_task" `Quick test_file_to_task;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "demand and equation 2" `Quick test_demand_and_required;
          Alcotest.test_case "equation 1 (r = 0)" `Quick test_required_equation1_no_faults;
          Alcotest.test_case "eq-2 bandwidth schedulable" `Quick
            test_required_bandwidth_schedulable;
          Alcotest.test_case "minimum search" `Quick test_minimum;
        ] );
      ( "program",
        [
          Alcotest.test_case "figure 6 layout" `Quick test_of_layout_toy;
          Alcotest.test_case "figure 5 data cycle" `Quick test_of_layout_flat_cycle;
          Alcotest.test_case "cycling discipline enforced" `Quick
            test_of_layout_rejects_bad_cycling;
          Alcotest.test_case "idle slots" `Quick test_of_layout_idle;
          Alcotest.test_case "flat builder" `Quick test_flat_builder;
          Alcotest.test_case "aida_flat builder" `Quick test_aida_flat_builder;
          Alcotest.test_case "pinwheel builder" `Quick test_pinwheel_builder;
          Alcotest.test_case "auto builder" `Quick test_auto_builder;
          Alcotest.test_case "consecutive blocks distinct" `Quick
            test_block_at_distinct_consecutive;
        ] );
      ( "generalized",
        [
          Alcotest.test_case "program pipeline" `Quick test_generalized_program;
          Alcotest.test_case "densities" `Quick test_generalized_densities;
          Alcotest.test_case "spec validation" `Quick test_generalized_spec_validation;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "closed forms" `Quick test_bounds;
          Alcotest.test_case "20-fold speedup example" `Quick test_twenty_fold_speedup;
        ] );
      ( "block-size",
        [
          Alcotest.test_case "induced tasks" `Quick test_block_size_tasks;
          Alcotest.test_case "largest uniform" `Quick test_block_size_largest_uniform;
          Alcotest.test_case "smaller is denser-efficient" `Quick
            test_block_size_smaller_is_more_efficient;
          Alcotest.test_case "per-file multipliers" `Quick test_block_size_multipliers;
        ] );
      ( "designer",
        [
          Alcotest.test_case "plan" `Quick test_designer_plan;
          Alcotest.test_case "reports reason" `Quick test_designer_reports_reason;
          Alcotest.test_case "validation" `Quick test_designer_validation;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "idle slots" `Quick test_codec_idle_slots;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "file io" `Quick test_codec_file_io;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bandwidth_bounds_ordered;
            prop_pinwheel_programs_meet_conditions;
            prop_data_cycle_periodicity;
            prop_codec_roundtrip_random;
            prop_codec_never_crashes_on_garbage;
          ] );
    ]
