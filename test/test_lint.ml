(* pindisk-lint self-tests: each rule's scan mechanism probed directly
   on in-memory sources, the config/baseline parsers, and the driver's
   policy application (suppression, expiry, staleness, exit codes).
   The cram test in test/lint pins the CLI's exact bytes; here we pin
   the semantics. *)

module Lint = Pindisk_lint
module Scan = Lint.Scan
module Config = Lint.Config
module Baseline = Lint.Baseline
module Driver = Lint.Driver
module Report = Lint.Report
module Json = Pindisk_check.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let scan text =
  match Scan.string { Scan.file = "t.ml"; text } with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let fired text = List.map (fun d -> d.Lint.Diag.rule) (scan text)
let check_fired name expect text = Alcotest.(check (list string)) name expect (fired text)

(* ---- scan: one probe per rule, plus the non-firing counterparts --- *)

let test_scan_l1 () =
  check_fired "gettimeofday" [ "L1" ] "let now () = Unix.gettimeofday ()";
  check_fired "Sys.time" [ "L1" ] "let t () = Sys.time ()";
  check_fired "global Random" [ "L1" ] "let j () = Random.int 100";
  check_fired "Stdlib prefix stripped" [ "L1" ] "let j () = Stdlib.Random.int 100";
  check_fired "self_init" [ "L1" ] "let () = Random.self_init ()";
  check_fired "seeded state is sanctioned" []
    "let draw st = Random.State.int st 100";
  check_fired "unrelated Unix call" [] "let p () = Unix.getpid ()"

let test_scan_l2 () =
  check_fired "failwith" [ "L2" ] {|let f () = failwith "boom"|};
  check_fired "raise" [ "L2" ] "let f () = raise Not_found";
  check_fired "invalid_arg" [ "L2" ] {|let f () = invalid_arg "x"|};
  check_fired "raise_notrace" [ "L2" ] "let f () = raise_notrace Exit";
  check_fired "qualified raise" [ "L2" ] "let f () = Stdlib.raise Exit";
  check_fired "a result is not a raise" [] {|let f () = Error "boom"|}

let test_scan_l3 () =
  check_fired "unsafe_get" [ "L3" ] "let f b = Bytes.unsafe_get b 0";
  check_fired "unsafe_set" [ "L3" ] "let f a = Array.unsafe_set a 0 1";
  check_fired "Obj.magic" [ "L3" ] "let f x = Obj.magic x";
  check_fired "unchecked external" [ "L3" ]
    {|external g : Bytes.t -> int -> int = "%caml_bytes_get16u"|};
  check_fired "checked external" []
    {|external g : Bytes.t -> int -> int = "%caml_bytes_get16"|};
  check_fired "non-primitive external" []
    {|external id : 'a -> 'a = "%identity"|}

let test_scan_l4_atomic () =
  check_fired "raw Atomic" [ "L4" ] "let c = Atomic.make 0";
  check_fired "Atomic op" [ "L4" ] "let f c = Atomic.incr c"

let test_scan_l4_closure () =
  check_fired "captured ref under parallel_for" [ "L4" ]
    "let f pool n = let s = ref 0 in Pool.parallel_for pool 0 n (fun i -> s := !s + i)";
  check_fired "captured ref under Domain.spawn" [ "L4" ]
    "let f s = Domain.spawn (fun () -> incr s)";
  check_fired "captured Hashtbl under spawn" [ "L4" ]
    "let f t = Domain.spawn (fun () -> Hashtbl.replace t 1 ())";
  check_fired "captured mutable field" [ "L4" ]
    "let f pool r n = Pool.parallel_for pool 0 n (fun i -> r.count <- i)";
  check_fired "closure-local ref is fine" []
    "let f pool n = Pool.parallel_for pool 0 n (fun i -> let s = ref i in ignore !s)";
  check_fired "parameter shadowing is fine" []
    "let f pool n = Pool.parallel_for pool 0 n (fun s -> ignore s)";
  check_fired "capture under a non-spawn iterator is fine" []
    "let f l = let s = ref 0 in List.iter (fun i -> s := !s + i) l"

let test_scan_l5 () =
  check_fired "try with _" [ "L5" ] "let f g = try g () with _ -> 0";
  check_fired "aliased wildcard" [ "L5" ] "let f g = try g () with _ as e -> ignore e; 0";
  check_fired "or-pattern wildcard arm" [ "L5" ]
    "let f g = try g () with Not_found | _ -> 0";
  check_fired "match exception _" [ "L5" ]
    "let f l = match List.hd l with v -> v | exception _ -> 0";
  check_fired "specific handler is fine" []
    "let f g = try g () with Not_found -> 0";
  (* rebind-and-re-raise fires L2 (bare raise) but, rightly, no L5 *)
  check_fired "rebound handler fires no L5" [ "L2" ]
    "let f g = try g () with e -> raise e"

let test_scan_context_and_order () =
  let ds =
    scan "let a () = failwith \"x\"\nlet b () = Sys.time ()"
  in
  check_int "both findings" 2 (List.length ds);
  let d1 = List.nth ds 0 and d2 = List.nth ds 1 in
  check_string "first context" "a" d1.Lint.Diag.context;
  check_string "second context" "b" d2.Lint.Diag.context;
  check_bool "position-major order" true (d1.Lint.Diag.line < d2.Lint.Diag.line);
  let top = scan "let () = failwith \"x\"" in
  check_string "unit pattern has no name" "<toplevel>"
    (List.hd top).Lint.Diag.context

let test_scan_parse_error () =
  match Scan.string { Scan.file = "broken.ml"; text = "let = syntax error" } with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> check_bool "error names the file" true
      (String.length e > 0 && String.sub e 0 9 = "broken.ml")

(* ---- config ------------------------------------------------------- *)

let config_exn s =
  match Config.of_string s with
  | Ok c -> c
  | Error e -> Alcotest.failf "config rejected: %s" e

let test_config_parse () =
  let c =
    config_exn
      "# comment\npindisk-lint v1\nscope L1 lib/sim lib/store\nexcept L1 \
       lib/sim/toy\nscope L3 *\nallow L2 lib/net/a.ml validate\n"
  in
  check_bool "scoped file" true (Config.applies c ~rule:"L1" ~file:"lib/sim/fault.ml");
  check_bool "component boundary" false
    (Config.applies c ~rule:"L1" ~file:"lib/simx.ml");
  check_bool "excepted subdir" false
    (Config.applies c ~rule:"L1" ~file:"lib/sim/toy/demo.ml");
  check_bool "star scope" true (Config.applies c ~rule:"L3" ~file:"anything.ml");
  check_bool "unscoped rule is off" false
    (Config.applies c ~rule:"L2" ~file:"lib/net/a.ml");
  let d ~context =
    Lint.Diag.make ~rule:"L2" ~file:"lib/net/a.ml" ~line:1 ~col:0 ~context
      ~message:"m"
  in
  check_bool "allow hits its context" true (Config.allowed c (d ~context:"validate"));
  check_bool "allow misses others" false (Config.allowed c (d ~context:"fetch"))

let test_config_errors () =
  let rejected s = Result.is_error (Config.of_string s) in
  check_bool "missing header" true (rejected "scope L1 lib\n");
  check_bool "unknown rule" true (rejected "pindisk-lint v1\nscope L9 lib\n");
  check_bool "allow arity" true (rejected "pindisk-lint v1\nallow L2 lib\n");
  check_bool "unknown stanza" true (rejected "pindisk-lint v1\nban L2 lib\n");
  check_bool "error carries the line" true
    (match Config.of_string "pindisk-lint v1\nscope L9 lib\n" with
    | Error e -> String.length e >= 6 && String.sub e 0 6 = "line 2"
    | Ok _ -> false)

(* ---- baseline ----------------------------------------------------- *)

let test_baseline_parse_and_match () =
  let b =
    match
      Baseline.of_string
        "pindisk-lint-baseline v1\n# why\nsuppress L2 lib/sim retrieve \
         2027-06-30\nsuppress L1 lib/core/a.ml * 2020-01-01\n"
    with
    | Ok b -> b
    | Error e -> Alcotest.failf "baseline rejected: %s" e
  in
  check_int "two entries" 2 (List.length b);
  let e1 = List.nth b 0 and e2 = List.nth b 1 in
  let d file context =
    Lint.Diag.make ~rule:"L2" ~file ~line:9 ~col:0 ~context ~message:"m"
  in
  check_bool "dir prefix + context" true
    (Baseline.matches e1 (d "lib/sim/transport.ml" "retrieve"));
  check_bool "context mismatch" false
    (Baseline.matches e1 (d "lib/sim/transport.ml" "other"));
  check_bool "star context" true
    (Baseline.matches e2
       (Lint.Diag.make ~rule:"L1" ~file:"lib/core/a.ml" ~line:1 ~col:0
          ~context:"whatever" ~message:"m"));
  check_bool "not yet expired" false (Baseline.expired ~today:"2026-08-08" e1);
  check_bool "expiry day itself still suppresses" false
    (Baseline.expired ~today:"2027-06-30" e1);
  check_bool "expired" true (Baseline.expired ~today:"2026-08-08" e2)

let test_baseline_errors () =
  let rejected s = Result.is_error (Baseline.of_string s) in
  check_bool "missing header" true (rejected "suppress L2 lib f 2030-01-01\n");
  check_bool "bad date" true
    (rejected "pindisk-lint-baseline v1\nsuppress L2 lib f 2030-1-1\n");
  check_bool "bad rule" true
    (rejected "pindisk-lint-baseline v1\nsuppress L9 lib f 2030-01-01\n");
  check_bool "valid_date accepts ISO" true (Baseline.valid_date "2026-08-08");
  check_bool "valid_date rejects junk" false (Baseline.valid_date "tomorrow")

(* ---- driver: policy application and the gate exit codes ----------- *)

let policy =
  config_exn "pindisk-lint v1\nscope L1 lib\nscope L2 lib\nscope L5 lib\n"

let src file text = { Scan.file; text }
let clean = src "lib/ok.ml" "let add a b = a + b"
let dirty = src "lib/bad.ml" "let now () = Unix.gettimeofday ()"

let run ?(baseline = []) ?(today = "2026-08-08") sources =
  Driver.run ~config:policy ~baseline ~today ~sources

let test_driver_exit_codes () =
  check_int "clean tree" 0 (Driver.exit_code (run [ clean ]));
  let o = run [ clean; dirty ] in
  check_int "findings gate" 1 (Driver.exit_code o);
  check_int "one finding" 1 (List.length o.Driver.findings);
  check_int "files counted" 2 o.Driver.files;
  let broken = src "lib/broken.ml" "let = nope" in
  check_int "parse error dominates" 2 (Driver.exit_code (run [ dirty; broken ]))

let test_driver_scope_filters () =
  (* Same violation outside the scoped dir: candidate but not a finding. *)
  let elsewhere = src "bench/bad.ml" "let now () = Unix.gettimeofday ()" in
  let o = run [ elsewhere ] in
  check_int "out-of-scope file is clean" 0 (List.length o.Driver.findings)

let test_driver_baseline_lifecycle () =
  let entry expires =
    {
      Baseline.rule = "L1";
      file = "lib/bad.ml";
      context = "now";
      expires;
      ln = 1;
    }
  in
  let live = run ~baseline:[ entry "2030-01-01" ] [ clean; dirty ] in
  check_int "suppressed" 0 (List.length live.Driver.findings);
  check_int "recorded" 1 (List.length live.Driver.suppressed);
  check_int "suppression gates nothing" 0 (Driver.exit_code live);
  let lapsed = run ~baseline:[ entry "2020-01-01" ] [ clean; dirty ] in
  check_int "expired entry reactivates" 1 (List.length lapsed.Driver.findings);
  check_int "expiry is reported" 1 (List.length lapsed.Driver.expired);
  check_int "reactivated finding gates" 1 (Driver.exit_code lapsed);
  let stale = run ~baseline:[ entry "2030-01-01" ] [ clean ] in
  check_int "unmatched entry is stale" 1 (List.length stale.Driver.stale);
  check_int "stale gates a clean tree" 1 (Driver.exit_code stale)

let test_driver_injection_flips_gate () =
  (* The CI self-test in miniature: adding one violating file must flip
     the exit code of an otherwise clean run. *)
  let before = Driver.exit_code (run [ clean ]) in
  let after =
    Driver.exit_code
      (run [ clean; src "lib/zz_inject.ml" "let f () = failwith \"boom\"" ])
  in
  check_int "clean before" 0 before;
  check_int "non-zero after" 1 after

(* ---- report: byte-stable JSON ------------------------------------- *)

let test_report_json_stable () =
  let o = run [ clean; dirty ] in
  let s1 = Json.to_string (Report.to_json o) in
  let s2 = Json.to_string (Report.to_json o) in
  check_string "same bytes" s1 s2;
  check_bool "schema first" true
    (String.length s1 > 30
    && String.sub s1 0 33 = "{\n  \"schema\": \"pindisk-lint v1\",\n");
  check_bool "summary counts findings" true
    (Report.summary_line o = "1 finding (L1 1) in 2 files, 0 suppressed, 0 stale")

let () =
  Alcotest.run "lint"
    [
      ( "scan",
        [
          Alcotest.test_case "L1 determinism" `Quick test_scan_l1;
          Alcotest.test_case "L2 typed errors" `Quick test_scan_l2;
          Alcotest.test_case "L3 unsafe containment" `Quick test_scan_l3;
          Alcotest.test_case "L4 raw atomics" `Quick test_scan_l4_atomic;
          Alcotest.test_case "L4 closure captures" `Quick test_scan_l4_closure;
          Alcotest.test_case "L5 silent swallow" `Quick test_scan_l5;
          Alcotest.test_case "context and order" `Quick test_scan_context_and_order;
          Alcotest.test_case "parse errors" `Quick test_scan_parse_error;
        ] );
      ( "config",
        [
          Alcotest.test_case "parse and apply" `Quick test_config_parse;
          Alcotest.test_case "rejects malformed" `Quick test_config_errors;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "parse, match, expire" `Quick
            test_baseline_parse_and_match;
          Alcotest.test_case "rejects malformed" `Quick test_baseline_errors;
        ] );
      ( "driver",
        [
          Alcotest.test_case "exit codes" `Quick test_driver_exit_codes;
          Alcotest.test_case "scope filtering" `Quick test_driver_scope_filters;
          Alcotest.test_case "baseline lifecycle" `Quick
            test_driver_baseline_lifecycle;
          Alcotest.test_case "injected violation flips the gate" `Quick
            test_driver_injection_flips_gate;
        ] );
      ( "report",
        [ Alcotest.test_case "byte-stable JSON" `Quick test_report_json_stable ] );
    ]
