module Estimator = Pindisk_adapt.Estimator
module Policy = Pindisk_adapt.Policy
module Ladder = Pindisk_adapt.Ladder
module Swap = Pindisk_adapt.Swap
module Controller = Pindisk_adapt.Controller
module Driver = Pindisk_adapt.Driver
module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode
module Aida = Pindisk_ida.Aida
module Program = Pindisk.Program
module Fault = Pindisk_sim.Fault
module Workload = Pindisk_sim.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Estimator                                                           *)
(* ------------------------------------------------------------------ *)

let feed_window e ~lost ~clean =
  for _ = 1 to lost do
    Estimator.observe e ~lost:true
  done;
  for _ = 1 to clean do
    Estimator.observe e ~lost:false
  done

let test_estimator_window_math () =
  let e = Estimator.create ~alpha:0.5 ~window:4 () in
  check_float "silent before any report" 0.0 (Estimator.estimate e);
  Estimator.observe e ~lost:true;
  Estimator.observe e ~lost:true;
  Estimator.observe e ~lost:false;
  check_float "still silent mid-window" 0.0 (Estimator.estimate e);
  check_int "no window yet" 0 (Estimator.windows e);
  Estimator.observe e ~lost:false;
  (* First window initializes the EWMA to its raw rate. *)
  check_float "first window raw rate" 0.5 (Estimator.estimate e);
  check_float "last window" 0.5 (Estimator.last_window e);
  feed_window e ~lost:0 ~clean:4;
  (* 0.5 * 0.0 + 0.5 * 0.5 = 0.25. *)
  check_float "ewma blends" 0.25 (Estimator.estimate e);
  check_float "last window is raw" 0.0 (Estimator.last_window e);
  check_int "two windows" 2 (Estimator.windows e);
  check_int "eight reports" 8 (Estimator.reports e)

let test_estimator_burst_vs_sustained () =
  (* A lone bad window moves the estimate by alpha of the jump; a
     sustained change converges to the new rate. *)
  let e = Estimator.create ~alpha:0.4 ~window:10 () in
  feed_window e ~lost:0 ~clean:10;
  feed_window e ~lost:0 ~clean:10;
  check_float "clean baseline" 0.0 (Estimator.estimate e);
  feed_window e ~lost:10 ~clean:0;
  check_float "burst absorbed to alpha" 0.4 (Estimator.estimate e);
  check_float "raw rate saw the full burst" 1.0 (Estimator.last_window e);
  feed_window e ~lost:0 ~clean:10;
  check_bool "burst decays" true (Estimator.estimate e < 0.4);
  for _ = 1 to 20 do
    feed_window e ~lost:10 ~clean:0
  done;
  check_bool "sustained loss converges" true (Estimator.estimate e > 0.99)

let test_estimator_validation () =
  Alcotest.check_raises "alpha zero"
    (Invalid_argument "Estimator.create: alpha must be in (0, 1]") (fun () ->
      ignore (Estimator.create ~alpha:0.0 ()));
  Alcotest.check_raises "alpha above one"
    (Invalid_argument "Estimator.create: alpha must be in (0, 1]") (fun () ->
      ignore (Estimator.create ~alpha:1.5 ()));
  Alcotest.check_raises "empty window"
    (Invalid_argument "Estimator.create: window must be >= 1") (fun () ->
      ignore (Estimator.create ~window:0 ()))

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let three_levels ?(dwell = 2) () =
  Policy.create ~dwell
    [
      Policy.level "clear";
      Policy.level ~enter:0.1 ~exit:0.05 ~boost:1 "degraded";
      Policy.level ~enter:0.3 ~exit:0.15 ~boost:2 "storm";
    ]

let test_policy_dwell_commit () =
  let p = three_levels () in
  check_int "starts at baseline" 0 (Policy.current p);
  check_bool "one bad epoch proposes only" true (Policy.observe p 0.2 = None);
  check_bool "second bad epoch commits" true (Policy.observe p 0.2 = Some 1);
  check_int "current moved" 1 (Policy.current p);
  check_bool "level carries its boost" true
    ((Policy.current_level p).Policy.boost = 1)

let test_policy_lone_spike_forgotten () =
  let p = three_levels () in
  ignore (Policy.observe p 0.5);
  (* Estimate back in band: the candidate is dropped, not remembered. *)
  check_bool "clean epoch resets" true (Policy.observe p 0.0 = None);
  check_bool "fresh spike must re-earn dwell" true (Policy.observe p 0.5 = None);
  check_int "still baseline" 0 (Policy.current p)

let test_policy_no_flap_in_hysteresis_band () =
  (* Oscillation across the enter threshold but inside the band: the
     candidate alternates, the streak never reaches dwell, nothing
     commits. *)
  let p = three_levels () in
  for _ = 1 to 50 do
    check_bool "above enter proposes" true (Policy.observe p 0.12 = None);
    check_bool "below enter resets" true (Policy.observe p 0.08 = None)
  done;
  check_int "no transition ever" 0 (Policy.current p)

let test_policy_band_holds_level () =
  let p = three_levels () in
  ignore (Policy.observe p 0.2);
  ignore (Policy.observe p 0.2);
  check_int "at degraded" 1 (Policy.current p);
  (* Between exit (0.05) and enter (0.1): inside the hysteresis band, the
     level holds no matter how long. *)
  for _ = 1 to 50 do
    check_bool "band holds" true (Policy.observe p 0.07 = None)
  done;
  check_int "still degraded" 1 (Policy.current p)

let test_policy_direct_jump () =
  let p = three_levels () in
  (* Escalation goes straight to the highest warranted level... *)
  check_bool "first storm epoch" true (Policy.observe p 0.5 = None);
  check_bool "second commits to storm, skipping degraded" true
    (Policy.observe p 0.5 = Some 2);
  (* ...and recovery straight to the lowest sustainable one. *)
  check_bool "first clean epoch" true (Policy.observe p 0.0 = None);
  check_bool "second commits to clear, skipping degraded" true
    (Policy.observe p 0.0 = Some 0);
  check_int "home" 0 (Policy.current p)

let test_policy_partial_deescalation () =
  let p = three_levels () in
  ignore (Policy.observe p 0.5);
  ignore (Policy.observe p 0.5);
  check_int "at storm" 2 (Policy.current p);
  (* 0.1 exits storm (< 0.15) but not degraded (>= 0.05): one rung down. *)
  ignore (Policy.observe p 0.1);
  check_bool "commits one rung down" true (Policy.observe p 0.1 = Some 1);
  check_int "at degraded" 1 (Policy.current p)

let test_policy_validation () =
  Alcotest.check_raises "dwell zero"
    (Invalid_argument "Policy.create: dwell must be >= 1") (fun () ->
      ignore (Policy.create ~dwell:0 [ Policy.level "clear" ]));
  Alcotest.check_raises "no levels"
    (Invalid_argument "Policy.create: no levels") (fun () ->
      ignore (Policy.create []));
  Alcotest.check_raises "exit above enter"
    (Invalid_argument "Policy.create: level bad needs 0 <= exit < enter <= 1")
    (fun () ->
      ignore
        (Policy.create
           [ Policy.level "clear"; Policy.level ~enter:0.1 ~exit:0.2 "bad" ]));
  Alcotest.check_raises "thresholds must increase"
    (Invalid_argument "Policy.create: thresholds must increase along the ladder")
    (fun () ->
      ignore
        (Policy.create
           [
             Policy.level "clear";
             Policy.level ~enter:0.3 ~exit:0.1 "worse";
             Policy.level ~enter:0.2 ~exit:0.15 "worst";
           ]))

(* ------------------------------------------------------------------ *)
(* Ladder                                                              *)
(* ------------------------------------------------------------------ *)

(* Three items on a bandwidth-2 channel, sized so each extra block of
   boost pushes the plan one rung further down the ladder. *)
let item_a = Item.make ~id:0 ~name:"a" ~blocks:2 ~avi:4 ~value:100 ()
let item_b = Item.make ~id:1 ~name:"b" ~blocks:4 ~avi:16 ~value:10 ()
let item_c = Item.make ~id:2 ~name:"c" ~blocks:6 ~avi:48 ~value:1 ()
let abc = [ item_a; item_b; item_c ]

let base_mode =
  Mode.make ~name:"base" ~default:Aida.Non_real_time
    [ ("a", Aida.Critical 2); ("b", Aida.Standard); ("c", Aida.Non_real_time) ]

let austere =
  Mode.make ~name:"austere" ~default:Aida.Non_real_time
    [ ("a", Aida.Critical 2) ]

let bw2_ladder () =
  Ladder.create ~fallbacks:[ austere ] ~max_boost:4 ~bandwidth:2
    ~base_mode abc

let shed_names plan =
  List.sort compare (List.map (fun i -> i.Item.name) plan.Ladder.shed)

let test_ladder_walks_every_rung () =
  let l = bw2_ladder () in
  let plan b = Ladder.plan l ~boost:b in
  (match (plan 0).Ladder.rung with
  | Ladder.Baseline -> ()
  | r -> Alcotest.failf "boost 0: expected baseline, got %a" Ladder.pp_rung r);
  (match (plan 1).Ladder.rung with
  | Ladder.Boost 1 -> ()
  | r -> Alcotest.failf "boost 1: expected boost+1, got %a" Ladder.pp_rung r);
  (match (plan 2).Ladder.rung with
  | Ladder.Mode_switch "austere+2" -> ()
  | r -> Alcotest.failf "boost 2: expected mode switch, got %a" Ladder.pp_rung r);
  Alcotest.(check (list string)) "boost 3 sheds the cheapest item" [ "c" ]
    (shed_names (plan 3));
  Alcotest.(check (list string)) "boost 4 sheds two" [ "b"; "c" ]
    (shed_names (plan 4))

let test_ladder_keeps_critical_item () =
  let l = bw2_ladder () in
  for b = 0 to 4 do
    let p = Ladder.plan l ~boost:b in
    check_bool
      (Printf.sprintf "critical item survives boost %d" b)
      true
      (List.exists (fun i -> i.Item.name = "a") p.Ladder.admitted)
  done

let test_ladder_fixed_capacities () =
  let l = bw2_ladder () in
  (* blocks + max tolerance over all modes + max_boost. *)
  check_int "capacity a" 8 (Ladder.capacity_for l item_a);
  check_int "capacity b" 9 (Ladder.capacity_for l item_b);
  check_int "capacity c" 10 (Ladder.capacity_for l item_c);
  (* Every rung's program disperses to the provisioned capacity, so block
     indices collected before a swap stay valid after it. *)
  for b = 0 to 4 do
    let p = Ladder.plan l ~boost:b in
    List.iter
      (fun (i : Item.t) ->
        check_int
          (Printf.sprintf "boost %d keeps item %s at fixed capacity" b
             i.Item.name)
          (Ladder.capacity_for l i)
          (Program.capacity p.Ladder.program i.Item.id))
      p.Ladder.admitted
  done

let test_ladder_recovery_is_bit_identical () =
  let l = bw2_ladder () in
  let before = Swap.digest (Ladder.plan l ~boost:0).Ladder.program in
  ignore (Ladder.plan l ~boost:4);
  let after = Swap.digest (Ladder.plan l ~boost:0).Ladder.program in
  Alcotest.(check string) "re-planning at boost 0 reproduces the program"
    before after

let test_ladder_clamps_boost () =
  let l = bw2_ladder () in
  check_int "beyond max_boost clamps" 4 (Ladder.plan l ~boost:99).Ladder.boost;
  check_int "negative boost clamps to baseline" 0
    (Ladder.plan l ~boost:(-3)).Ladder.boost

let test_ladder_validation () =
  Alcotest.check_raises "no items"
    (Invalid_argument "Ladder.create: no items") (fun () ->
      ignore (Ladder.create ~bandwidth:2 ~base_mode []));
  Alcotest.check_raises "unschedulable baseline"
    (Invalid_argument "Ladder.create: base mode not schedulable at this bandwidth")
    (fun () -> ignore (Ladder.create ~bandwidth:1 ~base_mode abc));
  let huge = Item.make ~id:9 ~name:"huge" ~blocks:252 ~avi:300 ~value:1 () in
  Alcotest.check_raises "capacity beyond IDA limit"
    (Invalid_argument
       "Ladder.create: item huge needs capacity 256 > 255 (IDA limit)")
    (fun () ->
      ignore
        (Ladder.create ~bandwidth:2
           ~base_mode:(Mode.make ~name:"m" ~default:Aida.Non_real_time [])
           [ huge ]))

(* ------------------------------------------------------------------ *)
(* Swap                                                                *)
(* ------------------------------------------------------------------ *)

let layout_1 =
  [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]

let layout_2 =
  [ (0, 0); (0, 1); (1, 0); (0, 2); (0, 3); (1, 1); (0, 4); (1, 2) ]

let caps = [ (0, 10); (1, 6) ]
let prog_1 () = Program.of_layout layout_1 ~capacities:caps
let prog_2 () = Program.of_layout layout_2 ~capacities:caps

let test_swap_waits_for_boundary () =
  let p1 = prog_1 () and p2 = prog_2 () in
  let s = Swap.create p1 in
  Swap.stage s ~cause:"test" p2;
  check_bool "pending" true (Swap.pending s);
  for slot = 1 to Program.period p1 - 1 do
    check_bool "no swap off the boundary" true (Swap.tick s slot = None)
  done;
  (match Swap.tick s (Program.period p1) with
  | Some e ->
      check_int "installed at the boundary" (Program.period p1) e.Swap.slot;
      check_int "phase 0 by invariant" 0 e.Swap.phase;
      Alcotest.(check string) "old digest" (Swap.digest p1) e.Swap.old_digest;
      Alcotest.(check string) "new digest" (Swap.digest p2) e.Swap.new_digest
  | None -> Alcotest.fail "boundary tick must install");
  check_bool "nothing pending after install" false (Swap.pending s);
  check_int "origin moved" (Program.period p1) (Swap.origin s);
  check_int "one log entry" 1 (List.length (Swap.log s))

let test_swap_block_at_phase_shift () =
  let p1 = prog_1 () and p2 = prog_2 () in
  let s = Swap.create p1 in
  Swap.stage s ~cause:"test" p2;
  let boundary = Program.period p1 in
  ignore (Swap.tick s boundary);
  for k = 0 to (2 * Program.period p2) - 1 do
    check_bool "live program phase-shifted to its installation slot" true
      (Swap.block_at s (boundary + k) = Program.block_at p2 k)
  done

let test_swap_stage_live_cancels () =
  let p1 = prog_1 () and p2 = prog_2 () in
  let s = Swap.create p1 in
  Swap.stage s ~cause:"change" p2;
  check_bool "pending" true (Swap.pending s);
  Swap.stage s ~cause:"changed my mind" p1;
  check_bool "staging the live program cancels" false (Swap.pending s);
  check_bool "boundary tick is a no-op" true
    (Swap.tick s (Program.period p1) = None);
  check_int "nothing logged" 0 (List.length (Swap.log s))

let test_swap_restage_replaces () =
  let p1 = prog_1 () and p2 = prog_2 () in
  let p3 = Program.of_layout layout_1 ~capacities:[ (0, 12); (1, 6) ] in
  let s = Swap.create p1 in
  Swap.stage s ~cause:"first thought" p2;
  Swap.stage s ~cause:"second thought" p3;
  (match Swap.tick s (Program.period p1) with
  | Some e ->
      Alcotest.(check string) "the later staging wins" (Swap.digest p3)
        e.Swap.new_digest;
      Alcotest.(check string) "with its cause" "second thought" e.Swap.cause
  | None -> Alcotest.fail "boundary tick must install");
  check_int "one swap, not two" 1 (List.length (Swap.log s))

let test_swap_data_cycle_boundary () =
  let p1 = prog_1 () and p2 = prog_2 () in
  check_bool "toy program block-cycles over several periods" true
    (Program.data_cycle p1 > Program.period p1);
  let s = Swap.create ~boundary:Swap.Data_cycle p1 in
  Swap.stage s ~cause:"aligned" p2;
  check_bool "period boundary is not enough" true
    (Swap.tick s (Program.period p1) = None);
  check_bool "data-cycle boundary installs" true
    (Swap.tick s (Program.data_cycle p1) <> None)

let test_swap_log_chronological () =
  let p1 = prog_1 () and p2 = prog_2 () in
  let s = Swap.create p1 in
  Swap.stage s ~cause:"out" p2;
  ignore (Swap.tick s (Program.period p1));
  Swap.stage s ~cause:"back" p1;
  let back_at = Program.period p1 + Program.period p2 in
  ignore (Swap.tick s back_at);
  match Swap.log s with
  | [ e1; e2 ] ->
      check_bool "chronological order" true (e1.Swap.slot < e2.Swap.slot);
      check_int "every entry on a boundary" 0 e1.Swap.phase;
      check_int "every entry on a boundary (2)" 0 e2.Swap.phase;
      Alcotest.(check string) "round trip ends on the original program"
        (Swap.digest p1) e2.Swap.new_digest
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

(* Drive the closed loop by hand: one tick / report / decide per slot,
   with the per-slot loss verdict scripted by [lost_at]. *)
let drive c ~from ~until ~lost_at =
  for slot = from to until - 1 do
    ignore (Controller.tick c slot);
    Controller.report c ~lost:(lost_at slot);
    Controller.decide c ~slot
  done

let crisis_controller () =
  let ladder = bw2_ladder () in
  let estimator = Estimator.create ~alpha:0.6 ~window:16 () in
  let policy =
    Policy.create ~dwell:2
      [ Policy.level "clear"; Policy.level ~enter:0.25 ~exit:0.1 ~boost:4 "crisis" ]
  in
  (ladder, Controller.create ~estimator ~policy ladder)

let test_controller_descends_to_shedding () =
  let _, c = crisis_controller () in
  drive c ~from:0 ~until:512 ~lost_at:(fun _ -> true);
  (match (Controller.plan c).Ladder.rung with
  | Ladder.Shed shed ->
      Alcotest.(check (list string)) "sheds down to the critical item"
        [ "b"; "c" ]
        (List.sort compare (List.map (fun i -> i.Item.name) shed))
  | r -> Alcotest.failf "expected shedding, got %a" Ladder.pp_rung r);
  check_int "one sustained change, one swap" 1
    (List.length (Controller.swap_log c));
  List.iter
    (fun e -> check_int "swap on a cycle boundary" 0 e.Swap.phase)
    (Controller.swap_log c)

let test_controller_recovers_to_original_program () =
  let ladder, c = crisis_controller () in
  let baseline = Swap.digest (Ladder.plan ladder ~boost:0).Ladder.program in
  drive c ~from:0 ~until:512 ~lost_at:(fun _ -> true);
  drive c ~from:512 ~until:2048 ~lost_at:(fun _ -> false);
  check_int "descent plus recovery: two swaps" 2
    (List.length (Controller.swap_log c));
  Alcotest.(check string) "recovery reinstalls the original program"
    baseline
    (Swap.digest (Swap.program (Controller.swap c)));
  (match (Controller.plan c).Ladder.rung with
  | Ladder.Baseline -> ()
  | r -> Alcotest.failf "expected baseline after recovery, got %a"
           Ladder.pp_rung r);
  List.iter
    (fun e -> check_int "every swap on a cycle boundary" 0 e.Swap.phase)
    (Controller.swap_log c)

let test_controller_oscillation_never_swaps () =
  (* Raw windows alternating just above enter and just below it (but above
     exit): with alpha 1 the estimate tracks the raw rate, the policy
     candidate flips every window, and the dwell never fills. *)
  let ladder = bw2_ladder () in
  let estimator = Estimator.create ~alpha:1.0 ~window:20 () in
  let policy =
    Policy.create ~dwell:2
      [ Policy.level "clear"; Policy.level ~enter:0.5 ~exit:0.25 ~boost:1 "bad" ]
  in
  let c = Controller.create ~estimator ~policy ladder in
  let lost_at slot =
    let window = slot / 20 and pos = slot mod 20 in
    if window mod 2 = 0 then pos < 11 (* 0.55: above enter *)
    else pos < 9 (* 0.45: inside the band *)
  in
  drive c ~from:0 ~until:800 ~lost_at;
  check_int "no swap ever" 0 (List.length (Controller.swap_log c));
  Alcotest.(check string) "level never left clear" "clear"
    (Controller.level c).Policy.name

let test_controller_notify_stall_escalates () =
  (* A detected server stall floods one full estimator window with
     losses and forces an immediate decision: the controller climbs off
     baseline without waiting for per-slot reports to accumulate. *)
  let _, c = crisis_controller () in
  drive c ~from:0 ~until:64 ~lost_at:(fun _ -> false);
  Alcotest.(check string) "healthy channel stays clear" "clear"
    (Controller.level c).Policy.name;
  Controller.notify_stall c ~slot:64;
  Controller.notify_stall c ~slot:65;
  Alcotest.(check string) "stall escalates to crisis" "crisis"
    (Controller.level c).Policy.name;
  (* The staged program installs at the next cycle boundary and the
     ladder is off baseline. *)
  drive c ~from:66 ~until:128 ~lost_at:(fun _ -> true);
  match (Controller.plan c).Ladder.rung with
  | Ladder.Baseline -> Alcotest.fail "stall must leave baseline"
  | _ -> ()

let test_controller_validation () =
  let ladder = bw2_ladder () in
  Alcotest.check_raises "decision_windows zero"
    (Invalid_argument "Controller.create: decision_windows must be >= 1")
    (fun () ->
      ignore
        (Controller.create ~decision_windows:0
           ~estimator:(Estimator.create ())
           ~policy:(Policy.create [ Policy.level "clear" ])
           ladder))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let test_driver_losses_deterministic () =
  let phases () =
    [
      { Driver.length = 40; fault = Fault.bernoulli ~p:0.3 ~seed:5 };
      {
        Driver.length = 40;
        fault =
          Fault.burst ~p_good_to_bad:0.2 ~p_bad_to_good:0.3 ~loss_good:0.05
            ~loss_bad:0.6 ~seed:9;
      };
    ]
  in
  let a = Driver.losses (phases ()) in
  let b = Driver.losses (phases ()) in
  check_int "script length" 80 (Array.length a);
  check_bool "same script, same verdicts" true (a = b);
  (* Each phase is anchored at its absolute start slot, so the script is
     insensitive to what ran before it. *)
  let solo = Fault.bernoulli ~p:0.3 ~seed:5 in
  Fault.reset_to solo 0;
  for s = 0 to 39 do
    check_bool "first phase matches the raw process" true
      (a.(s) = Fault.advance solo)
  done

let test_driver_window_miss_ratio () =
  let r =
    {
      Driver.requests = 10;
      completed = 6;
      missed = 4;
      timeline =
        [
          { Driver.t0 = 0; t1 = 500; issued = 4; missed = 1 };
          { Driver.t0 = 500; t1 = 1000; issued = 6; missed = 3 };
        ];
      swaps = [];
    }
  in
  check_float "global ratio" 0.4 (Driver.miss_ratio r);
  check_float "first bucket" 0.25 (Driver.window_miss_ratio r ~t0:0 ~t1:500);
  check_float "second bucket" 0.5 (Driver.window_miss_ratio r ~t0:500 ~t1:1000);
  check_float "whole span" 0.4 (Driver.window_miss_ratio r ~t0:0 ~t1:1000);
  check_float "empty window" 0.0 (Driver.window_miss_ratio r ~t0:2000 ~t1:3000)

let test_driver_static_vs_adaptive () =
  let ladder = bw2_ladder () in
  let baseline = Ladder.plan ladder ~boost:0 in
  let program = baseline.Ladder.program in
  let losses =
    Driver.losses
      [
        { Driver.length = 1024; fault = Fault.none () };
        { Driver.length = 2048; fault = Fault.bernoulli ~p:0.5 ~seed:7 };
        { Driver.length = 1024; fault = Fault.none () };
      ]
  in
  let needed_of f =
    let item = List.find (fun (i : Item.t) -> i.Item.id = f) abc in
    item.Item.blocks
  in
  let deadline_of f =
    let item = List.find (fun (i : Item.t) -> i.Item.id = f) abc in
    2 * item.Item.avi
  in
  let trace =
    Workload.generate ~program ~rate:0.05 ~theta:0.9 ~needed_of ~deadline_of
      ~horizon:4096 ~seed:21
  in
  let static = Driver.run ~program ~losses trace in
  let controller =
    let estimator = Estimator.create ~alpha:0.6 ~window:32 () in
    let policy =
      Policy.create ~dwell:2
        [
          Policy.level "clear";
          Policy.level ~enter:0.2 ~exit:0.08 ~boost:1 "degraded";
        ]
    in
    Controller.create ~estimator ~policy ladder
  in
  let adaptive = Driver.run ~controller ~program ~losses trace in
  check_int "identical trace measured" static.Driver.requests
    adaptive.Driver.requests;
  check_bool "the bad phase hurts the static server" true
    (static.Driver.missed > 0);
  check_bool "adaptation does not lose requests" true
    (adaptive.Driver.missed <= static.Driver.missed);
  check_bool "the channel change triggered at least one swap" true
    (List.length adaptive.Driver.swaps >= 1);
  check_bool "at most escalation plus recovery" true
    (List.length adaptive.Driver.swaps <= 2);
  List.iter
    (fun e -> check_int "swaps only at cycle boundaries" 0 e.Swap.phase)
    adaptive.Driver.swaps;
  check_int "static runs never swap" 0 (List.length static.Driver.swaps)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "adapt"
    [
      ( "estimator",
        [
          Alcotest.test_case "window math" `Quick test_estimator_window_math;
          Alcotest.test_case "burst vs sustained" `Quick
            test_estimator_burst_vs_sustained;
          Alcotest.test_case "validation" `Quick test_estimator_validation;
        ] );
      ( "policy",
        [
          Alcotest.test_case "dwell commit" `Quick test_policy_dwell_commit;
          Alcotest.test_case "lone spike forgotten" `Quick
            test_policy_lone_spike_forgotten;
          Alcotest.test_case "no flap in hysteresis band" `Quick
            test_policy_no_flap_in_hysteresis_band;
          Alcotest.test_case "band holds level" `Quick
            test_policy_band_holds_level;
          Alcotest.test_case "direct jump" `Quick test_policy_direct_jump;
          Alcotest.test_case "partial de-escalation" `Quick
            test_policy_partial_deescalation;
          Alcotest.test_case "validation" `Quick test_policy_validation;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "walks every rung" `Quick
            test_ladder_walks_every_rung;
          Alcotest.test_case "keeps critical item" `Quick
            test_ladder_keeps_critical_item;
          Alcotest.test_case "fixed capacities" `Quick
            test_ladder_fixed_capacities;
          Alcotest.test_case "recovery bit-identical" `Quick
            test_ladder_recovery_is_bit_identical;
          Alcotest.test_case "clamps boost" `Quick test_ladder_clamps_boost;
          Alcotest.test_case "validation" `Quick test_ladder_validation;
        ] );
      ( "swap",
        [
          Alcotest.test_case "waits for boundary" `Quick
            test_swap_waits_for_boundary;
          Alcotest.test_case "block_at phase shift" `Quick
            test_swap_block_at_phase_shift;
          Alcotest.test_case "stage live cancels" `Quick
            test_swap_stage_live_cancels;
          Alcotest.test_case "restage replaces" `Quick
            test_swap_restage_replaces;
          Alcotest.test_case "data-cycle boundary" `Quick
            test_swap_data_cycle_boundary;
          Alcotest.test_case "log chronological" `Quick
            test_swap_log_chronological;
        ] );
      ( "controller",
        [
          Alcotest.test_case "descends to shedding" `Quick
            test_controller_descends_to_shedding;
          Alcotest.test_case "recovers to original program" `Quick
            test_controller_recovers_to_original_program;
          Alcotest.test_case "oscillation never swaps" `Quick
            test_controller_oscillation_never_swaps;
          Alcotest.test_case "notify_stall escalates" `Quick
            test_controller_notify_stall_escalates;
          Alcotest.test_case "validation" `Quick test_controller_validation;
        ] );
      ( "driver",
        [
          Alcotest.test_case "losses deterministic" `Quick
            test_driver_losses_deterministic;
          Alcotest.test_case "window miss ratio" `Quick
            test_driver_window_miss_ratio;
          Alcotest.test_case "static vs adaptive" `Quick
            test_driver_static_vs_adaptive;
        ] );
    ]
