(* The certified-pipeline auditor: trusted kernel, witnesses, MDS checks,
   spec parsing and whole-design audits. *)

module A = Pindisk_algebra
module Bc = A.Bc
module Rules = A.Rules
module Convert = A.Convert
module Trace = A.Trace
module P = Pindisk_pinwheel
module Task = P.Task
module Schedule = P.Schedule
module Verify = P.Verify
module Analysis = P.Analysis
module C = Pindisk_check
module Kernel = C.Kernel
module Json = C.Json
module Witness = C.Witness
module Mds = C.Mds
module Spec = C.Spec
module Audit = C.Audit
module Matrix = Pindisk_gf256.Matrix
module Q = Pindisk_util.Q

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let accepted name trace =
  match Kernel.validate trace with
  | Ok () -> ()
  | Error r -> Alcotest.failf "%s: %a" name Kernel.pp_reject r

let rejected_at name step trace =
  match Kernel.validate trace with
  | Ok () -> Alcotest.failf "%s: expected rejection" name
  | Error r -> Alcotest.(check (option int)) name step r.Kernel.step

let paper_bcs =
  [
    Bc.make ~file:0 ~m:5 ~d:[ 100; 105; 110; 115; 120 ];
    Bc.make ~file:1 ~m:4 ~d:[ 8; 9 ];
    Bc.make ~file:2 ~m:2 ~d:[ 20; 24; 30 ];
    Bc.make ~file:3 ~m:1 ~d:[ 6; 9 ];
    Bc.make ~file:4 ~m:6 ~d:[ 60; 66 ];
    Bc.make ~file:5 ~m:2 ~d:[ 5; 7 ];
  ]

(* ------------------------------------------------------------------ *)
(* kernel: acceptance                                                  *)
(* ------------------------------------------------------------------ *)

let test_kernel_accepts_producers () =
  List.iter
    (fun bc ->
      let _, tr = Convert.tr1_certified bc in
      accepted "tr1" tr;
      let _, tr = Convert.tr2_certified bc in
      accepted "tr2" tr;
      let _, tr = Convert.best_single_certified bc in
      accepted "single" tr;
      let _, _, tr = Convert.best_certified bc in
      accepted "best" tr)
    paper_bcs

let test_kernel_accepts_reduction () =
  accepted "reduction"
    (Trace.reduction ~file:0 ~m:3 ~tolerance:2 ~window:24);
  accepted "no faults" (Trace.reduction ~file:1 ~m:1 ~tolerance:0 ~window:4)

let test_certified_matches_uncertified () =
  (* The certified producers must not change what gets emitted. *)
  List.iter
    (fun bc ->
      let label, nice = Convert.best bc in
      let label', nice', _ = Convert.best_certified bc in
      Alcotest.(check string) "label" label label';
      check_bool "nice" true (nice = nice'))
    paper_bcs

(* ------------------------------------------------------------------ *)
(* kernel: rejection                                                   *)
(* ------------------------------------------------------------------ *)

let tr2_trace =
  (* Example 2's walk produces derived references and conjunction steps. *)
  snd (Convert.tr2_certified (List.nth paper_bcs 0))

let remake ?file ?m ?d ?nice ?steps (t : Trace.t) =
  Trace.make
    ~file:(Option.value file ~default:t.Trace.file)
    ~m:(Option.value m ~default:t.Trace.m)
    ~d:(Option.value d ~default:t.Trace.d)
    ~transform:t.Trace.transform
    ~nice:(Option.value nice ~default:t.Trace.nice)
    ~steps:(Option.value steps ~default:t.Trace.steps)

let test_kernel_rejects_reordering () =
  (* Swapping two steps breaks the derived-reference discipline. *)
  match tr2_trace.Trace.steps with
  | s0 :: s1 :: rest ->
      rejected_at "swapped steps" (Some 0)
        (remake ~steps:(s1 :: s0 :: rest) tr2_trace)
  | _ -> Alcotest.fail "tr2 trace unexpectedly short"

let test_kernel_rejects_truncation () =
  (* Dropping the steps leaves fault levels uncovered (a whole-trace
     fault: step = None). *)
  rejected_at "no steps" None (remake ~steps:[] tr2_trace)

let test_kernel_rejects_bad_scale () =
  let tr = Trace.reduction ~file:0 ~m:2 ~tolerance:1 ~window:10 in
  let steps =
    List.mapi
      (fun i s ->
        match (i, s) with
        | 1, Trace.Implies { premise; scale = _; target } ->
            Trace.Implies { premise; scale = 0; target }
        | _ -> s)
      tr.Trace.steps
  in
  rejected_at "zero scale" (Some 1) (remake ~steps tr)

let test_kernel_rejects_support_overlap () =
  (* pc(1,4) twice would cover pc(2,4) — but only as *distinct*
     pseudo-tasks. Referencing the same emitted entry twice must fail. *)
  let c = { Trace.a = 1; b = 4 } in
  let t =
    Trace.make ~file:0 ~m:2 ~d:[| 4 |] ~transform:"handmade" ~nice:[ c ]
      ~steps:
        [
          Trace.Conjoin
            {
              base = Trace.Emitted 0;
              guaranteed = 1;
              scale = 1;
              alias = Trace.Emitted 0;
              target = { Trace.a = 2; b = 4 };
            };
        ]
  in
  rejected_at "self-conjunction" (Some 0) t;
  (* The same argument with two distinct entries is fine. *)
  accepted "distinct entries"
    (Trace.make ~file:0 ~m:2 ~d:[| 4 |] ~transform:"handmade" ~nice:[ c; c ]
       ~steps:
         [
           Trace.Conjoin
             {
               base = Trace.Emitted 0;
               guaranteed = 1;
               scale = 1;
               alias = Trace.Emitted 1;
               target = { Trace.a = 2; b = 4 };
             };
         ])

let test_kernel_rejects_forward_reference () =
  let tr = Trace.reduction ~file:0 ~m:2 ~tolerance:1 ~window:10 in
  let steps =
    List.mapi
      (fun i s ->
        match (i, s) with
        | 0, Trace.Implies { premise = _; scale; target } ->
            Trace.Implies { premise = Trace.Derived 1; scale; target }
        | _ -> s)
      tr.Trace.steps
  in
  rejected_at "forward reference" (Some 0) (remake ~steps tr)

let test_kernel_rejects_uncovered_level () =
  (* Claim an extra fault level the steps never establish. *)
  let tr = Trace.reduction ~file:0 ~m:2 ~tolerance:1 ~window:10 in
  rejected_at "extra level" None (remake ~d:[| 10; 10; 10 |] tr)

let test_kernel_rejects_overflow_bait () =
  (* Gigantic witnesses must be rejected, not overflow into acceptance. *)
  let big = max_int / 2 in
  let t =
    Trace.make ~file:0 ~m:1 ~d:[| 4 |] ~transform:"handmade"
      ~nice:[ { Trace.a = 1; b = 4 } ]
      ~steps:
        [
          Trace.Implies
            {
              premise = Trace.Emitted 0;
              scale = big;
              target = { Trace.a = 1; b = 4 };
            };
        ]
  in
  rejected_at "huge scale" (Some 0) t;
  rejected_at "huge window" None (remake ~d:[| big |] t)

(* qcheck: any single-field mutation of a valid trace is rejected, and the
   rejection pinpoints the mutated step. *)

let gen_bc =
  QCheck2.Gen.(
    let* file = int_range 0 3 in
    let* m = int_range 1 4 in
    let* r = int_range 0 3 in
    let* slack0 = int_range 1 24 in
    let* increments = list_size (return r) (int_range 0 6) in
    let d0 = (m * (slack0 + 1)) + (m / 2) in
    let rec build prev j = function
      | [] -> []
      | inc :: rest ->
          let dj = max (prev + inc) (m + j) in
          dj :: build dj (j + 1) rest
    in
    return (Bc.make ~file ~m ~d:(d0 :: build d0 1 increments)))

let prop_producer_traces_validate =
  QCheck2.Test.make ~name:"kernel accepts every producer trace" ~count:200
    gen_bc (fun bc ->
      List.for_all
        (fun tr -> Kernel.validate tr = Ok ())
        [
          snd (Convert.tr1_certified bc);
          snd (Convert.tr2_certified bc);
          snd (Convert.best_single_certified bc);
        ])

(* Mutations guaranteed to invalidate the step they touch. *)
let mutate_step k trace =
  let break_source = function
    | Trace.Emitted _ | Trace.Derived _ ->
        Trace.Derived (List.length trace.Trace.steps)
  in
  let steps =
    List.mapi
      (fun i s ->
        if i <> k then s
        else
          match s with
          | Trace.Implies { premise; scale; target } ->
              Trace.Implies { premise = break_source premise; scale; target }
          | Trace.Conjoin { base; guaranteed; scale; alias; target } ->
              Trace.Conjoin
                { base; guaranteed; scale; alias = break_source alias; target }
          | Trace.Align { base; scale; alias; target } ->
              Trace.Align { base = break_source base; scale; alias; target })
      trace.Trace.steps
  in
  remake ~steps trace

let mutate_target k trace =
  let steps =
    List.mapi
      (fun i s ->
        if i <> k then s
        else
          let bend (c : Trace.cond) = { c with Trace.a = c.Trace.b + 1 } in
          match s with
          | Trace.Implies { premise; scale; target } ->
              Trace.Implies { premise; scale; target = bend target }
          | Trace.Conjoin { base; guaranteed; scale; alias; target } ->
              Trace.Conjoin
                { base; guaranteed; scale; alias; target = bend target }
          | Trace.Align { base; scale; alias; target } ->
              Trace.Align { base; scale; alias; target = bend target })
      trace.Trace.steps
  in
  remake ~steps trace

let gen_mutation =
  QCheck2.Gen.(
    let* bc = gen_bc in
    let* pick = int_range 0 2 in
    let trace =
      match pick with
      | 0 -> snd (Convert.tr1_certified bc)
      | 1 -> snd (Convert.tr2_certified bc)
      | _ -> snd (Convert.best_single_certified bc)
    in
    let* k = int_range 0 (List.length trace.Trace.steps - 1) in
    let* which = bool in
    return (trace, k, which))

let prop_mutation_rejected =
  QCheck2.Test.make
    ~name:"one-field step mutations are rejected at the mutated step"
    ~count:300 gen_mutation (fun (trace, k, which) ->
      let mutated = if which then mutate_step k trace else mutate_target k trace in
      match Kernel.validate mutated with
      | Ok () -> false
      | Error r -> r.Kernel.step = Some k)

(* ------------------------------------------------------------------ *)
(* witnesses: JSON round trips                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip () =
  List.iter
    (fun bc ->
      let _, _, tr = Convert.best_certified bc in
      let json = Witness.trace_to_json tr in
      let text = Json.to_string json in
      match Json.of_string text with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok json' -> (
          match Witness.trace_of_json json' with
          | Error e -> Alcotest.failf "decode: %s" e
          | Ok tr' ->
              check_bool "equal after round trip" true (Trace.equal tr tr');
              accepted "still validates" tr'))
    paper_bcs

let test_trace_decode_rejects_garbage () =
  let bad s =
    match Result.bind (Json.of_string s) Witness.trace_of_json with
    | Ok _ -> Alcotest.failf "accepted %s" s
    | Error _ -> ()
  in
  bad {|{"m": 1}|};
  bad {|{"file":0,"m":1,"d":[4],"transform":"x","nice":[],"steps":[{"rule":"mystery"}]}|};
  bad {|{"file":0,"m":1,"d":["4"],"transform":"x","nice":[],"steps":[]}|}

let test_certificate_roundtrip () =
  let roundtrip cert =
    let text = Json.to_string (Witness.certificate_to_json cert) in
    match Result.bind (Json.of_string text) Witness.certificate_of_json with
    | Error e -> Alcotest.failf "certificate: %s" e
    | Ok c -> check_bool "same certificate" true (c = cert)
  in
  roundtrip (Analysis.Density_above_one (Q.make 4 3));
  roundtrip (Analysis.Pigeonhole { window = 5; demand = 6 });
  roundtrip Analysis.Exhausted

let test_certificate_revalidation () =
  let sys_dense =
    [ Task.make ~id:0 ~a:2 ~b:3; Task.make ~id:1 ~a:2 ~b:3 ]
  in
  let valid v = check_bool "valid" true (v = Witness.Valid) in
  let refuted = function
    | Witness.Refuted _ -> ()
    | v -> Alcotest.failf "expected refutation, got %a" Witness.pp_recheck v
  in
  valid
    (Witness.revalidate_certificate sys_dense
       (Analysis.Density_above_one (Q.make 4 3)));
  refuted
    (Witness.revalidate_certificate sys_dense
       (Analysis.Density_above_one (Q.make 3 2)));
  let sys_pigeon = [ Task.make ~id:0 ~a:3 ~b:5; Task.make ~id:1 ~a:3 ~b:5 ] in
  valid
    (Witness.revalidate_certificate sys_pigeon
       (Analysis.Pigeonhole { window = 5; demand = 6 }));
  refuted
    (Witness.revalidate_certificate sys_pigeon
       (Analysis.Pigeonhole { window = 5; demand = 7 }));
  (* Example 1's family: {(1,2), (1,3), (1,12)} is infeasible. *)
  let infeasible =
    [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:3; Task.unit ~id:2 ~b:12 ]
  in
  valid (Witness.revalidate_certificate infeasible Analysis.Exhausted);
  (* ... while the harmonic {(1,2), (1,4)} is schedulable, so an Exhausted
     claim for it is a lie the recheck catches. *)
  let feasible = [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:4 ] in
  refuted (Witness.revalidate_certificate feasible Analysis.Exhausted)

(* ------------------------------------------------------------------ *)
(* json corner cases                                                   *)
(* ------------------------------------------------------------------ *)

let test_json_parser () =
  let ok s = match Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %s" s
    | Error _ -> ()
  in
  check_bool "nested" true
    (ok {| {"a": [1, -2, {"b": "x\n\"y"}], "c": null} |}
    = Json.Obj
        [
          ( "a",
            List [ Int 1; Int (-2); Obj [ ("b", Str "x\n\"y") ] ] );
          ("c", Null);
        ]);
  check_bool "float literal" true (ok "1.5" = Json.Float 1.5);
  check_bool "exponent literal" true (ok "2e3" = Json.Float 2000.0);
  check_bool "plain int stays exact" true (ok "7" = Json.Int 7);
  bad "1.";
  bad "1e";
  bad "1e999" (* overflows to infinity *);
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated";
  (* printer/parser round trip on every shape at once *)
  let v =
    Json.Obj
      [
        ("i", Int 42);
        ("s", Str "with \"quotes\" and \\ and \t tab");
        ("l", List [ Bool true; Bool false; Null; List []; Obj [] ]);
      ]
  in
  check_bool "pretty round trip" true (Json.of_string (Json.to_string v) = Ok v);
  check_bool "minified round trip" true
    (Json.of_string (Json.to_string ~minify:true v) = Ok v)

(* NaN and infinities have no JSON form: the printer refuses rather than
   emitting something the parser (rightly) rejects. *)
let test_json_float_rejects_non_finite () =
  List.iter
    (fun f ->
      match Json.to_string (Json.Float f) with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.failf "rendered a non-finite float as %s" s)
    [ Float.nan; Float.infinity; Float.neg_infinity; -.Float.nan ]

(* Arbitrary bit patterns: finite floats round-trip to the identical
   bits (the emitter picks the shortest lossless decimal); NaN/inf are
   rejected at print time. *)
let prop_json_float_roundtrip =
  QCheck2.Test.make ~name:"float emitter is lossless, rejects non-finite"
    ~count:1000
    QCheck2.Gen.(
      oneof
        [
          float;
          map Int64.float_of_bits int64;
          oneofl
            [ 0.0; -0.0; 1.0 /. 3.0; max_float; min_float; 4e-324; -1.5e300 ];
        ])
    (fun f ->
      if not (Float.is_finite f) then
        match Json.to_string (Json.Float f) with
        | exception Invalid_argument _ -> true
        | _ -> false
      else
        match Json.of_string (Json.to_string (Json.Float f)) with
        | Ok (Json.Float g) -> Int64.bits_of_float g = Int64.bits_of_float f
        | _ -> false)

(* Escape correctness over the full byte range, both renderings. *)
let prop_json_string_roundtrip =
  QCheck2.Test.make ~name:"string escape round trip" ~count:1000
    QCheck2.Gen.(string_size (int_range 0 60))
    (fun s ->
      Json.of_string (Json.to_string (Json.Str s)) = Ok (Json.Str s)
      && Json.of_string (Json.to_string ~minify:true (Json.Str s))
         = Ok (Json.Str s))

(* ------------------------------------------------------------------ *)
(* mds                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mds_exhaustive () =
  (match Mds.check 5 ~m:3 with
  | Ok (Mds.Exhaustive 10) -> ()
  | other ->
      Alcotest.failf "expected Exhaustive 10, got %s"
        (match other with
        | Ok o -> Format.asprintf "%a" Mds.pp_outcome o
        | Error e -> e));
  check_bool "m = n" true (Mds.check 4 ~m:4 = Ok (Mds.Exhaustive 1));
  check_bool "bad dims" true (Result.is_error (Mds.check 2 ~m:3))

let test_mds_structural () =
  (* C(60, 30) is astronomically over budget: structural path. *)
  check_bool "structural" true (Mds.check 60 ~m:30 = Ok Mds.Structural)

let test_mds_detects_singular () =
  (* Duplicate rows are as non-MDS as it gets. *)
  let dup = Matrix.create ~rows:3 ~cols:2 (fun i j -> if i = 2 then Matrix.get (Matrix.vandermonde ~rows:3 ~cols:2) 0 j else Matrix.get (Matrix.vandermonde ~rows:3 ~cols:2) i j) in
  match Mds.check_matrix dup ~m:2 with
  | Ok (Mds.Failed rows) ->
      Alcotest.(check (array int)) "rows 0 and 2" [| 0; 2 |] rows
  | other ->
      Alcotest.failf "expected failure, got %s"
        (match other with
        | Ok o -> Format.asprintf "%a" Mds.pp_outcome o
        | Error e -> e)

(* ------------------------------------------------------------------ *)
(* rules satellite: binary-search max_guaranteed                       *)
(* ------------------------------------------------------------------ *)

let prop_max_guaranteed_matches_linear =
  QCheck2.Gen.(
    let gen =
      let* a = int_range 1 30 in
      let* b = int_range a 40 in
      let* window = int_range 1 120 in
      return (a, b, window)
    in
    QCheck2.Test.make ~name:"max_guaranteed = linear reference" ~count:500 gen
      (fun (a, b, window) ->
        let got = Task.make ~id:0 ~a ~b in
        let reference =
          let rec down k =
            if k = 0 then 0
            else if Rules.implies got (Task.make ~id:0 ~a:k ~b:window) then k
            else down (k - 1)
          in
          down window
        in
        Rules.max_guaranteed got ~window = reference))

let test_implies_scale_witness () =
  (* The recorded witness satisfies exactly the inequalities the kernel
     re-checks. *)
  List.iter
    (fun ((a, b), (c, e)) ->
      let got = Task.make ~id:0 ~a ~b and want = Task.make ~id:0 ~a:c ~b:e in
      match Rules.implies_scale got want with
      | Some n ->
          check_bool "n >= 1" true (n >= 1);
          check_bool "count" true (n * a >= c);
          check_bool "slack" true (n * (b - a) <= e - c)
      | None -> check_bool "implies agrees" false (Rules.implies got want))
    [ ((1, 3), (2, 8)); ((2, 5), (3, 9)); ((1, 2), (3, 5)); ((3, 7), (5, 9)) ]

(* ------------------------------------------------------------------ *)
(* verify satellite: window_counts                                     *)
(* ------------------------------------------------------------------ *)

let test_window_counts () =
  let s = Schedule.make [| 0; 1; 0; Schedule.idle |] in
  Alcotest.(check (array int))
    "window 2 counts" [| 1; 1; 1; 1 |]
    (Verify.window_counts s ~task:0 ~window:2);
  Alcotest.(check (array int))
    "window 5 counts (exceeds period)" [| 3; 2; 3; 2 |]
    (Verify.window_counts s ~task:0 ~window:5);
  (* min_in_window and check_pc must agree with the shared primitive. *)
  List.iter
    (fun window ->
      let counts = Verify.window_counts s ~task:0 ~window in
      let min_count = Array.fold_left min max_int counts in
      check_int
        (Printf.sprintf "min for window %d" window)
        min_count
        (Verify.min_in_window s ~task:0 ~window);
      check_bool
        (Printf.sprintf "check_pc for window %d" window)
        (min_count >= 1)
        (Verify.check_pc s ~task:0 ~a:1 ~b:window = None))
    [ 1; 2; 3; 4; 7; 9 ]

(* ------------------------------------------------------------------ *)
(* spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let designer_text =
  "pindisk-design v1\n\
   # comment\n\
   rate 4096\n\
   require incidents 1800 3 2\n\
   require guidance 5000 12 1\n\
   require map-tile 24000 45\n"

let generalized_text =
  "pindisk-design v1\nbc 2 20,24,30\nbc 1 6,9\nbc 6 60,66\n"

let test_spec_parsing () =
  (match Spec.of_string designer_text with
  | Ok (Spec.Designer { byte_rate; reqs }) ->
      check_int "rate" 4096 byte_rate;
      check_int "files" 3 (List.length reqs)
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.fail e);
  (match Spec.of_string generalized_text with
  | Ok (Spec.Generalized specs) -> check_int "conditions" 3 (List.length specs)
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.fail e);
  let bad s = check_bool s true (Result.is_error (Spec.of_string s)) in
  bad "rate 4096\n";
  bad "pindisk-design v1\nrate 4096\n";
  bad "pindisk-design v1\nrate 4096\nrequire a 100 5\nbc 1 6\n";
  bad "pindisk-design v1\nrequire a 100 5\n";
  bad "pindisk-design v1\nbogus 1 2\n"

(* ------------------------------------------------------------------ *)
(* whole-design audit                                                  *)
(* ------------------------------------------------------------------ *)

let run_audit text =
  match Result.bind (Spec.of_string text) Audit.run with
  | Ok report -> report
  | Error e -> Alcotest.fail e

let test_audit_designer () =
  let report = run_audit designer_text in
  check_bool "ok" true (Audit.ok report);
  Alcotest.(check string) "kind" "designer" report.Audit.kind;
  check_int "files" 3 (List.length report.Audit.files);
  check_bool "traces accepted" true (report.Audit.trace_result = Ok ());
  List.iter
    (fun (f : Audit.file_report) ->
      check_int "levels = tolerance + 1" (f.Audit.tolerance + 1)
        (List.length f.Audit.levels))
    report.Audit.files

let test_audit_generalized () =
  let report = run_audit generalized_text in
  check_bool "ok" true (Audit.ok report);
  Alcotest.(check string) "kind" "generalized" report.Audit.kind;
  check_bool "no problems" true (Audit.problems report = []);
  (* The report's embedded traces survive a JSON round trip and still
     validate. *)
  let json = Audit.to_json report in
  let reparsed =
    match Json.of_string (Json.to_string json) with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  match Json.get_list "traces" reparsed with
  | Error e -> Alcotest.fail e
  | Ok traces ->
      check_int "one trace per file" 3 (List.length traces);
      List.iter
        (fun tj ->
          match Witness.trace_of_json tj with
          | Error e -> Alcotest.fail e
          | Ok tr -> accepted "embedded trace" tr)
        traces

let test_audit_bands () =
  check_bool "1/3" true (Audit.band_of_density (Q.make 1 3) = Audit.Sa_guarantee);
  check_bool "1/2" true (Audit.band_of_density (Q.make 1 2) = Audit.Sa_guarantee);
  check_bool "7/10" true (Audit.band_of_density (Q.make 7 10) = Audit.Chan_chin);
  check_bool "3/4" true (Audit.band_of_density (Q.make 3 4) = Audit.Guarantee_gap);
  check_bool "5/6" true (Audit.band_of_density (Q.make 5 6) = Audit.Guarantee_gap);
  check_bool "9/10" true
    (Audit.band_of_density (Q.make 9 10) = Audit.Above_five_sixths);
  check_bool "1" true (Audit.band_of_density Q.one = Audit.Above_five_sixths);
  check_bool "7/6" true (Audit.band_of_density (Q.make 7 6) = Audit.Above_one)

let () =
  Alcotest.run "check"
    [
      ( "kernel",
        [
          Alcotest.test_case "accepts all producer traces" `Quick
            test_kernel_accepts_producers;
          Alcotest.test_case "accepts the simple-model reduction" `Quick
            test_kernel_accepts_reduction;
          Alcotest.test_case "certified output matches uncertified" `Quick
            test_certified_matches_uncertified;
          Alcotest.test_case "rejects reordered steps" `Quick
            test_kernel_rejects_reordering;
          Alcotest.test_case "rejects truncation" `Quick
            test_kernel_rejects_truncation;
          Alcotest.test_case "rejects a corrupted scale" `Quick
            test_kernel_rejects_bad_scale;
          Alcotest.test_case "rejects overlapping support" `Quick
            test_kernel_rejects_support_overlap;
          Alcotest.test_case "rejects forward references" `Quick
            test_kernel_rejects_forward_reference;
          Alcotest.test_case "rejects uncovered fault levels" `Quick
            test_kernel_rejects_uncovered_level;
          Alcotest.test_case "rejects overflow bait" `Quick
            test_kernel_rejects_overflow_bait;
        ] );
      ( "kernel-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_producer_traces_validate; prop_mutation_rejected ] );
      ( "witness",
        [
          Alcotest.test_case "trace JSON round trip" `Quick
            test_trace_roundtrip;
          Alcotest.test_case "trace decode rejects garbage" `Quick
            test_trace_decode_rejects_garbage;
          Alcotest.test_case "certificate round trip" `Quick
            test_certificate_roundtrip;
          Alcotest.test_case "certificate revalidation" `Quick
            test_certificate_revalidation;
        ] );
      ( "json",
        [
          Alcotest.test_case "parser" `Quick test_json_parser;
          Alcotest.test_case "non-finite floats rejected" `Quick
            test_json_float_rejects_non_finite;
          QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_string_roundtrip;
        ] );
      ( "mds",
        [
          Alcotest.test_case "exhaustive" `Quick test_mds_exhaustive;
          Alcotest.test_case "structural" `Quick test_mds_structural;
          Alcotest.test_case "detects singular" `Quick test_mds_detects_singular;
        ] );
      ( "rules",
        [
          Alcotest.test_case "implies_scale witness" `Quick
            test_implies_scale_witness;
          QCheck_alcotest.to_alcotest prop_max_guaranteed_matches_linear;
        ] );
      ( "verify",
        [ Alcotest.test_case "window_counts" `Quick test_window_counts ] );
      ("spec", [ Alcotest.test_case "parsing" `Quick test_spec_parsing ]);
      ( "audit",
        [
          Alcotest.test_case "designer design" `Quick test_audit_designer;
          Alcotest.test_case "generalized design" `Quick test_audit_generalized;
          Alcotest.test_case "density bands" `Quick test_audit_bands;
        ] );
    ]
