(* Containment proof: unsafe access inside the excepted codec dir. *)
let axpy dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.unsafe_set dst i
      (Char.chr (Char.code (Bytes.unsafe_get src i) lxor 1))
  done
