(* L3: unchecked access outside the codec kernels. *)
let peek b = Bytes.unsafe_get b 0

external get16u : Bytes.t -> int -> int = "%caml_bytes_get16u"
