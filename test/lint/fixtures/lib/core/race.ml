(* L4: outer mutable state mutated from a closure handed to a spawn
   point, and a raw Atomic outside the sanctioned mediators. *)
let hits = Atomic.make 0

let total pool jobs =
  let sum = ref 0 in
  Pool.parallel_for pool 0 (Array.length jobs) (fun i ->
      sum := !sum + jobs.(i));
  !sum

let count tbl keys =
  let d =
    Domain.spawn (fun () ->
        Array.iter (fun k -> Hashtbl.replace tbl k ()) keys)
  in
  Domain.join d

let fine jobs =
  (* Per-iteration local state: not a capture, must not fire. *)
  Array.map
    (fun j ->
      let acc = ref 0 in
      acc := j;
      !acc)
    jobs
