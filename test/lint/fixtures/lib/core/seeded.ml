(* Non-firing proof: seeded Random.State is the sanctioned RNG. *)
let draw st = Random.State.int st 100
let fresh seed = Random.State.make [| seed |]
