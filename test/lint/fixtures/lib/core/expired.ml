(* The baseline entry covering this finding expired in 2020. *)
let now () = Sys.time ()
