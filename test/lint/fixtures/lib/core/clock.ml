(* L1: wall-clock reads and global-RNG calls in slot-domain code. *)
let now () = Unix.gettimeofday ()
let jitter () = Random.int 100
