(* Containment proof: raw Atomic inside the excepted mediator dir. *)
let cell = Atomic.make 0
let bump () = Atomic.incr cell
