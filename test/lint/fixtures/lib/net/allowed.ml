(* Covered by the fixture config's allow stanza: must not fire. *)
let validate x = if x < 0 then invalid_arg "negative" else x
