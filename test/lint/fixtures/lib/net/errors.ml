(* L2: bare raises on a transport path. *)
let fetch x = if x < 0 then failwith "bad offset" else x
let lookup k tbl = try Hashtbl.find tbl k with Not_found -> raise Exit
