(* Suppressed by a live baseline entry (expires 2030-01-01). *)
let fetch () = raise Not_found
