(* L5: catch-alls that discard the exception. *)
let ignore_errors f = try f () with _ -> ()
let first_or_zero l = match List.hd l with v -> v | exception _ -> 0
