The fixture corpus holds one bad snippet per rule plus non-firing
proofs (seeded RNG, the allow-listed validate, unsafe access inside
the excepted codec dir, a raw Atomic inside the excepted sync dir).
--today pins baseline-expiry evaluation so the output is stable.

  $ pindisk-lint --root fixtures --config fixtures/lint.config \
  >   --baseline fixtures/lint.baseline --today 2026-08-08 lib
  lib/core/clock.ml:2:13: L1 (now) Unix.gettimeofday: wall-clock/global-RNG read; slot-domain code must be a pure function of (seed, slot) or replay breaks
  lib/core/clock.ml:3:16: L1 (jitter) Random.int: wall-clock/global-RNG read; slot-domain code must be a pure function of (seed, slot) or replay breaks
  lib/core/expired.ml:2:13: L1 (now) Sys.time: wall-clock/global-RNG read; slot-domain code must be a pure function of (seed, slot) or replay breaks
  lib/core/race.ml:3:11: L4 (hits) raw Atomic.make outside lib/obs/lib/util; shared state goes through Obs.Registry counters or Pindisk_util.Pool
  lib/core/race.ml:8:6: L4 (total) ref sum is mutated inside the closure passed to Pool.parallel_for but defined outside it; use Atomic (or merge per-domain results after the join)
  lib/core/race.ml:14:29: L4 (count) Hashtbl.replace on tbl inside the closure passed to Domain.spawn races: Hashtbl is not domain-safe; shard per domain or hold a Mutex
  lib/core/unsafe_leak.ml:2:13: L3 (peek) Bytes.unsafe_get: unchecked access outside the gf256/ida kernels; use the bounds-checked variant
  lib/core/unsafe_leak.ml:4:0: L3 (get16u) external get16u binds unchecked primitive "%caml_bytes_get16u" outside the gf256/ida kernels
  lib/net/errors.ml:2:28: L2 (fetch) bare failwith in a transport/retrieve path; return a typed error ([retrieve_result]-style) instead
  lib/net/errors.ml:3:60: L2 (lookup) bare raise in a transport/retrieve path; return a typed error ([retrieve_result]-style) instead
  lib/net/swallow.ml:2:36: L5 (ignore_errors) catch-all handler discards the exception; match the specific exceptions (or rebind and re-raise)
  lib/net/swallow.ml:3:52: L5 (first_or_zero) catch-all [exception _] case discards the exception; match the specific exceptions
  pindisk-lint: expired suppress L1 lib/core/expired.ml now 2020-01-01 (baseline line 7) — the finding above is live again
  pindisk-lint: 12 findings (L1 3, L2 2, L3 2, L4 3, L5 2) in 11 files, 1 suppressed, 0 stale
  [1]

The JSON document is byte-stable (same print -> parse -> print
identity the metrics schema pins):

  $ pindisk-lint --root fixtures --config fixtures/lint.config \
  >   --baseline fixtures/lint.baseline --today 2026-08-08 --json lib
  {
    "schema": "pindisk-lint v1",
    "files": 11,
    "findings": [
      {
        "rule": "L1",
        "file": "lib/core/clock.ml",
        "line": 2,
        "col": 13,
        "context": "now",
        "message": "Unix.gettimeofday: wall-clock/global-RNG read; slot-domain code must be a pure function of (seed, slot) or replay breaks"
      },
      {
        "rule": "L1",
        "file": "lib/core/clock.ml",
        "line": 3,
        "col": 16,
        "context": "jitter",
        "message": "Random.int: wall-clock/global-RNG read; slot-domain code must be a pure function of (seed, slot) or replay breaks"
      },
      {
        "rule": "L1",
        "file": "lib/core/expired.ml",
        "line": 2,
        "col": 13,
        "context": "now",
        "message": "Sys.time: wall-clock/global-RNG read; slot-domain code must be a pure function of (seed, slot) or replay breaks"
      },
      {
        "rule": "L4",
        "file": "lib/core/race.ml",
        "line": 3,
        "col": 11,
        "context": "hits",
        "message": "raw Atomic.make outside lib/obs/lib/util; shared state goes through Obs.Registry counters or Pindisk_util.Pool"
      },
      {
        "rule": "L4",
        "file": "lib/core/race.ml",
        "line": 8,
        "col": 6,
        "context": "total",
        "message": "ref sum is mutated inside the closure passed to Pool.parallel_for but defined outside it; use Atomic (or merge per-domain results after the join)"
      },
      {
        "rule": "L4",
        "file": "lib/core/race.ml",
        "line": 14,
        "col": 29,
        "context": "count",
        "message": "Hashtbl.replace on tbl inside the closure passed to Domain.spawn races: Hashtbl is not domain-safe; shard per domain or hold a Mutex"
      },
      {
        "rule": "L3",
        "file": "lib/core/unsafe_leak.ml",
        "line": 2,
        "col": 13,
        "context": "peek",
        "message": "Bytes.unsafe_get: unchecked access outside the gf256/ida kernels; use the bounds-checked variant"
      },
      {
        "rule": "L3",
        "file": "lib/core/unsafe_leak.ml",
        "line": 4,
        "col": 0,
        "context": "get16u",
        "message": "external get16u binds unchecked primitive \"%caml_bytes_get16u\" outside the gf256/ida kernels"
      },
      {
        "rule": "L2",
        "file": "lib/net/errors.ml",
        "line": 2,
        "col": 28,
        "context": "fetch",
        "message": "bare failwith in a transport/retrieve path; return a typed error ([retrieve_result]-style) instead"
      },
      {
        "rule": "L2",
        "file": "lib/net/errors.ml",
        "line": 3,
        "col": 60,
        "context": "lookup",
        "message": "bare raise in a transport/retrieve path; return a typed error ([retrieve_result]-style) instead"
      },
      {
        "rule": "L5",
        "file": "lib/net/swallow.ml",
        "line": 2,
        "col": 36,
        "context": "ignore_errors",
        "message": "catch-all handler discards the exception; match the specific exceptions (or rebind and re-raise)"
      },
      {
        "rule": "L5",
        "file": "lib/net/swallow.ml",
        "line": 3,
        "col": 52,
        "context": "first_or_zero",
        "message": "catch-all [exception _] case discards the exception; match the specific exceptions"
      }
    ],
    "suppressed": 1,
    "expired": [
      {
        "rule": "L1",
        "file": "lib/core/expired.ml",
        "context": "now",
        "expires": "2020-01-01",
        "line": 7
      }
    ],
    "stale": [],
    "by_rule": {
      "L1": 3,
      "L2": 2,
      "L3": 2,
      "L4": 3,
      "L5": 2
    },
    "errors": []
  }
  [1]

A baseline entry matching nothing is stale and fails the run even on
an otherwise clean tree:

  $ pindisk-lint --root fixtures --config fixtures/lint.config \
  >   --baseline fixtures/stale.baseline --today 2026-08-08 lib/codec lib/sync
  pindisk-lint: stale suppress L2 lib/net/gone.ml fetch 2030-01-01 (baseline line 4) — matches nothing, delete it
  pindisk-lint: 0 findings (-) in 2 files, 0 suppressed, 1 stale
  [1]

The contained dirs alone are clean (exit 0), and the summary artifact
follows the shared gate convention:

  $ pindisk-lint --root fixtures --config fixtures/lint.config \
  >   --today 2026-08-08 --summary gate.md lib/codec lib/sync
  pindisk-lint: clean (2 files, 0 suppressed)
  $ cat gate.md
  # Lint gate
  
  ## pindisk-lint (fixtures/lint.config, baseline as of 2026-08-08)
  
  clean (2 files, 0 suppressed)
  

Self-test: injecting a violation into the clean subtree flips the
exit code.

  $ cat > fixtures/lib/sync/zz_inject.ml << 'EOF'
  > let peek b = Bytes.unsafe_get b 0
  > EOF
  $ pindisk-lint --root fixtures --config fixtures/lint.config \
  >   --today 2026-08-08 lib/codec lib/sync
  lib/sync/zz_inject.ml:1:13: L3 (peek) Bytes.unsafe_get: unchecked access outside the gf256/ida kernels; use the bounds-checked variant
  pindisk-lint: 1 finding (L3 1) in 3 files, 0 suppressed, 0 stale
  [1]

A parse failure is an error, not a finding: exit 2.

  $ cat > fixtures/lib/sync/zz_broken.ml << 'EOF'
  > let = syntax error
  > EOF
  $ pindisk-lint --root fixtures --config fixtures/lint.config \
  >   --today 2026-08-08 lib/codec lib/sync
  pindisk-lint: error: lib/sync/zz_broken.ml: File "lib/sync/zz_broken.ml", line 1, characters 4-5:
                         Error: Syntax error
  
  lib/sync/zz_inject.ml:1:13: L3 (peek) Bytes.unsafe_get: unchecked access outside the gf256/ida kernels; use the bounds-checked variant
  pindisk-lint: 1 finding (L3 1) in 4 files, 0 suppressed, 0 stale
  [2]
