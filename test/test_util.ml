module Intmath = Pindisk_util.Intmath
module Q = Pindisk_util.Q

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Intmath                                                            *)
(* ------------------------------------------------------------------ *)

let test_gcd () =
  check_int "gcd 12 18" 6 (Intmath.gcd 12 18);
  check_int "gcd 0 0" 0 (Intmath.gcd 0 0);
  check_int "gcd 0 7" 7 (Intmath.gcd 0 7);
  check_int "gcd neg" 6 (Intmath.gcd (-12) 18);
  check_int "gcd coprime" 1 (Intmath.gcd 17 31)

let test_lcm () =
  check_int "lcm 4 6" 12 (Intmath.lcm 4 6);
  check_int "lcm 0 5" 0 (Intmath.lcm 0 5);
  check_int "lcm 7 7" 7 (Intmath.lcm 7 7);
  check_int "lcm_list" 60 (Intmath.lcm_list [ 4; 6; 10 ]);
  check_int "lcm_list empty" 1 (Intmath.lcm_list []);
  Alcotest.check_raises "lcm overflow" Intmath.Overflow (fun () ->
      ignore (Intmath.lcm max_int (max_int - 1)))

let test_pow () =
  check_int "2^10" 1024 (Intmath.pow 2 10);
  check_int "x^0" 1 (Intmath.pow 5 0);
  check_int "0^5" 0 (Intmath.pow 0 5);
  check_int "1^big" 1 (Intmath.pow 1 1000);
  Alcotest.check_raises "pow overflow" Intmath.Overflow (fun () ->
      ignore (Intmath.pow 2 64));
  Alcotest.check_raises "pow negative" (Invalid_argument "Intmath.pow: negative exponent")
    (fun () -> ignore (Intmath.pow 2 (-1)))

let test_divisions () =
  check_int "floor_div pos" 2 (Intmath.floor_div 7 3);
  check_int "floor_div neg" (-3) (Intmath.floor_div (-7) 3);
  check_int "ceil_div pos" 3 (Intmath.ceil_div 7 3);
  check_int "ceil_div exact" 2 (Intmath.ceil_div 6 3);
  check_int "ceil_div neg" (-2) (Intmath.ceil_div (-7) 3)

let test_log2 () =
  check_int "floor_log2 1" 0 (Intmath.floor_log2 1);
  check_int "floor_log2 2" 1 (Intmath.floor_log2 2);
  check_int "floor_log2 1023" 9 (Intmath.floor_log2 1023);
  check_int "floor_log2 1024" 10 (Intmath.floor_log2 1024);
  check_int "floor_pow2 100" 64 (Intmath.floor_pow2 100);
  check_bool "is_power_of_two 64" true (Intmath.is_power_of_two 64);
  check_bool "is_power_of_two 0" false (Intmath.is_power_of_two 0);
  check_bool "is_power_of_two 96" false (Intmath.is_power_of_two 96)

let test_lists () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Intmath.range 2 5);
  Alcotest.(check (list int)) "range empty" [] (Intmath.range 5 5);
  check_int "sum" 10 (Intmath.sum [ 1; 2; 3; 4 ]);
  check_int "max_list" 9 (Intmath.max_list [ 3; 9; 1 ]);
  check_int "min_list" 1 (Intmath.min_list [ 3; 9; 1 ])

(* ------------------------------------------------------------------ *)
(* Q                                                                  *)
(* ------------------------------------------------------------------ *)

let q = Alcotest.testable Q.pp Q.equal

let test_q_normalization () =
  Alcotest.check q "6/8 = 3/4" (Q.make 3 4) (Q.make 6 8);
  Alcotest.check q "neg den" (Q.make (-1) 2) (Q.make 1 (-2));
  Alcotest.check q "zero" Q.zero (Q.make 0 17);
  check_int "den positive" 2 (Q.make 1 (-2)).Q.den;
  Alcotest.check_raises "zero den" (Invalid_argument "Q.make: zero denominator")
    (fun () -> ignore (Q.make 1 0))

let test_q_arith () =
  Alcotest.check q "1/2 + 1/3" (Q.make 5 6) (Q.add (Q.make 1 2) (Q.make 1 3));
  Alcotest.check q "1/2 - 1/3" (Q.make 1 6) (Q.sub (Q.make 1 2) (Q.make 1 3));
  Alcotest.check q "2/3 * 3/4" (Q.make 1 2) (Q.mul (Q.make 2 3) (Q.make 3 4));
  Alcotest.check q "div" (Q.make 8 9) (Q.div (Q.make 2 3) (Q.make 3 4));
  Alcotest.check q "sum" Q.one (Q.sum [ Q.make 1 2; Q.make 1 3; Q.make 1 6 ]);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_q_compare () =
  check_bool "7/10 <= 7/10" true Q.(Q.make 7 10 <= Q.make 7 10);
  check_bool "7/10 < 7/10" false Q.(Q.make 7 10 < Q.make 7 10);
  check_bool "boundary 1/2+1/6+1/3 <= 1" true Q.(Q.sum [ Q.make 1 2; Q.make 1 6; Q.make 1 3 ] <= Q.one);
  check_bool "just above 1" false
    Q.(Q.sum [ Q.make 1 2; Q.make 1 6; Q.make 1 3; Q.make 1 1000 ] <= Q.one);
  Alcotest.check q "min" (Q.make 1 3) (Q.min (Q.make 1 2) (Q.make 1 3));
  Alcotest.check q "max" (Q.make 1 2) (Q.max (Q.make 1 2) (Q.make 1 3))

let test_q_rounding () =
  check_int "ceil 7/2" 4 (Q.ceil (Q.make 7 2));
  check_int "ceil 6/2" 3 (Q.ceil (Q.make 6 2));
  check_int "ceil -7/2" (-3) (Q.ceil (Q.make (-7) 2));
  check_int "floor 7/2" 3 (Q.floor (Q.make 7 2));
  check_int "floor -7/2" (-4) (Q.floor (Q.make (-7) 2));
  Alcotest.(check string) "pp frac" "7/10" (Q.to_string (Q.make 7 10));
  Alcotest.(check string) "pp int" "3" (Q.to_string (Q.of_int 3))

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

module Stats = Pindisk_util.Stats

let test_stats_basics () =
  let s = Stats.create () in
  List.iter (Stats.add_int s) [ 4; 1; 3; 2; 5 ];
  check_int "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Stats.total s);
  Alcotest.(check (float 1e-9)) "variance" 2.0 (Stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median s)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.0; 20.0 ];
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p50" 15.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 20.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p25" 12.5 (Stats.percentile s 25.0)

let test_stats_add_after_percentile () =
  (* Sorting for a percentile must not corrupt later additions. *)
  let s = Stats.create () in
  List.iter (Stats.add s) [ 3.0; 1.0 ];
  ignore (Stats.median s);
  Stats.add s 2.0;
  Alcotest.(check (float 1e-9)) "median after more adds" 2.0 (Stats.median s);
  check_int "count" 3 (Stats.count s)

let test_stats_empty () =
  let s = Stats.create () in
  check_bool "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.min_value: empty")
    (fun () -> ignore (Stats.min_value s));
  Alcotest.(check (list (triple (float 1e-9) (float 1e-9) int))) "histogram empty" []
    (Stats.histogram s ~buckets:4)

let test_stats_histogram () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 0.0; 1.0; 2.0; 3.0 ];
  let h = Stats.histogram s ~buckets:2 in
  check_int "two buckets" 2 (List.length h);
  let counts = List.map (fun (_, _, c) -> c) h in
  Alcotest.(check (list int)) "counts" [ 2; 2 ] counts

let prop_stats_percentiles_monotone =
  QCheck2.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let vals = List.map (Stats.percentile s) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals
      && Stats.percentile s 0.0 = Stats.min_value s
      && Stats.percentile s 100.0 = Stats.max_value s)

let test_stats_variance_large_offset () =
  (* sum_sq/n - mean^2 catastrophically cancels with a 1e9 offset; the
     two-pass computation must still see the jitter. *)
  let s = Stats.create () in
  List.iter (fun j -> Stats.add s (1e9 +. j)) [ 0.0; 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (float 1e-6)) "offset variance" 2.0 (Stats.variance s);
  Alcotest.(check (float 1e-6)) "offset mean" 1e9 (Stats.mean s +. (-2.0));
  (* constant data at a large offset: variance is exactly zero *)
  let c = Stats.create () in
  List.iter (fun _ -> Stats.add c 1e9) [ (); (); () ];
  Alcotest.(check (float 0.0)) "constant variance" 0.0 (Stats.variance c)

let test_stats_weighted_basics () =
  let s = Stats.create () in
  Stats.add_weighted s 2.0 3;
  Stats.add_weighted s 5.0 1;
  Stats.add_weighted s 4.0 0;
  (* weight 0: no-op *)
  check_int "count is total weight" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "total" 11.0 (Stats.total s);
  Alcotest.(check (float 1e-9)) "mean" 2.75 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.median s);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Stats.add_weighted: negative weight") (fun () ->
      Stats.add_weighted s 1.0 (-1))

let prop_stats_weighted_equals_expanded =
  (* add_weighted x w must be indistinguishable from w calls to add x —
     the cohort engine's O(1) class accounting rests on this. *)
  QCheck2.Test.make ~name:"weighted equals expanded" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 12)
        (pair (float_bound_inclusive 50.0) (int_range 0 9)))
    (fun entries ->
      let w = Stats.create () and e = Stats.create () in
      List.iter
        (fun (x, n) ->
          Stats.add_weighted w x n;
          for _ = 1 to n do
            Stats.add e x
          done)
        entries;
      Stats.count w = Stats.count e
      && abs_float (Stats.total w -. Stats.total e) < 1e-9
      && (Stats.count w = 0
         || abs_float (Stats.variance w -. Stats.variance e) < 1e-9
            && Stats.min_value w = Stats.min_value e
            && Stats.max_value w = Stats.max_value e
            && List.for_all
                 (fun p ->
                   abs_float (Stats.percentile w p -. Stats.percentile e p)
                   < 1e-9)
                 [ 0.0; 10.0; 50.0; 90.0; 99.0; 100.0 ]))

(* ------------------------------------------------------------------ *)
(* mix64                                                              *)
(* ------------------------------------------------------------------ *)

let test_mix64_decorrelates () =
  (* Consecutive inputs must not produce correlated outputs: over seeds
     s..s+63, low bits of mix64 should not follow the input parity. *)
  let same = ref 0 in
  for k = 0 to 63 do
    if Intmath.mix64 (1000 + k) land 1 = k land 1 then incr same
  done;
  check_bool "parity decorrelated" true (!same > 16 && !same < 48);
  (* injective on a sample window *)
  let seen = Hashtbl.create 256 in
  for k = -500 to 500 do
    Hashtbl.replace seen (Intmath.mix64 k) ()
  done;
  check_int "no collisions over 1001 inputs" 1001 (Hashtbl.length seen);
  (* deterministic and non-negative *)
  check_int "deterministic" (Intmath.mix64 42) (Intmath.mix64 42);
  check_bool "non-negative" true (Intmath.mix64 min_int >= 0)

let test_mix64_avalanche () =
  (* Flipping one input bit should flip roughly half the output bits. *)
  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 x
  in
  let total = ref 0 in
  let trials = 64 in
  for k = 1 to trials do
    let a = Intmath.mix64 k and b = Intmath.mix64 (k lxor 1) in
    total := !total + popcount (a lxor b)
  done;
  let avg = float_of_int !total /. float_of_int trials in
  check_bool
    (Printf.sprintf "avalanche avg %.1f bits" avg)
    true
    (avg > 20.0 && avg < 44.0)

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

module Pool = Pindisk_util.Pool

let test_pool_parallel_for () =
  let pool = Pool.create ~domains:3 () in
  check_int "size" 3 (Pool.size pool);
  let hits = Array.make 1000 0 in
  Pool.parallel_for pool ~n:1000 (fun i -> hits.(i) <- hits.(i) + 1);
  check_bool "every index exactly once" true (Array.for_all (( = ) 1) hits);
  (* reusable across jobs *)
  let acc = Atomic.make 0 in
  Pool.parallel_for pool ~n:100 (fun i -> ignore (Atomic.fetch_and_add acc i));
  check_int "sum 0..99" 4950 (Atomic.get acc);
  Pool.shutdown pool

let test_pool_single_domain_inline () =
  let pool = Pool.create ~domains:1 () in
  check_int "size" 1 (Pool.size pool);
  let seen = ref [] in
  Pool.parallel_for pool ~n:5 (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "inline, in order" [ 4; 3; 2; 1; 0 ] !seen;
  Pool.shutdown pool

let test_pool_exception_propagates () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.check_raises "worker exception re-raised" (Failure "boom") (fun () ->
      Pool.parallel_for pool ~n:10 (fun i -> if i = 7 then failwith "boom"));
  (* the pool survives a failed job *)
  let ok = Atomic.make 0 in
  Pool.parallel_for pool ~n:10 (fun _ -> ignore (Atomic.fetch_and_add ok 1));
  check_int "pool alive after failure" 10 (Atomic.get ok);
  Pool.shutdown pool

let test_pool_error_race () =
  (* Every task fails, from whichever domain claims it: the atomic error
     slot must surface exactly one of the raised exceptions (first CAS
     wins — no torn read of a mutable option), and the pool must stay
     usable afterwards. *)
  let pool = Pool.create ~domains:4 () in
  let raised = ref None in
  (try
     Pool.parallel_for pool ~n:64 (fun i -> raise (Failure (string_of_int i)))
   with Failure msg -> raised := Some msg);
  (match !raised with
  | Some msg ->
      let i = int_of_string msg in
      check_bool "a task's own error surfaced" true (i >= 0 && i < 64)
  | None -> Alcotest.fail "no exception propagated");
  let ok = Atomic.make 0 in
  Pool.parallel_for pool ~n:32 (fun _ -> ignore (Atomic.fetch_and_add ok 1));
  check_int "pool alive after racing failures" 32 (Atomic.get ok);
  Pool.shutdown pool

let test_pool_empty_and_bad () =
  let pool = Pool.create ~domains:2 () in
  Pool.parallel_for pool ~n:0 (fun _ -> assert false);
  Alcotest.check_raises "negative n" (Invalid_argument "Pool.parallel_for: negative count")
    (fun () -> Pool.parallel_for pool ~n:(-1) (fun _ -> ()));
  Pool.shutdown pool;
  Alcotest.check_raises "bad domains" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0 ()))

(* qcheck properties *)

let small = QCheck2.Gen.int_range (-50) 50
let small_pos = QCheck2.Gen.int_range 1 50

let arb_q =
  QCheck2.Gen.map2 (fun n d -> Q.make n d) small small_pos

let prop_add_commutative =
  QCheck2.Test.make ~name:"Q.add commutative" ~count:500
    QCheck2.Gen.(pair arb_q arb_q)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_add_associative =
  QCheck2.Test.make ~name:"Q.add associative" ~count:500
    QCheck2.Gen.(triple arb_q arb_q arb_q)
    (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"Q.mul distributes over add" ~count:500
    QCheck2.Gen.(triple arb_q arb_q arb_q)
    (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_compare_matches_float =
  QCheck2.Test.make ~name:"Q.compare agrees with float on non-ties" ~count:500
    QCheck2.Gen.(pair arb_q arb_q)
    (fun (a, b) ->
      let fa = Q.to_float a and fb = Q.to_float b in
      if abs_float (fa -. fb) < 1e-9 then true
      else compare fa fb = Q.compare a b)

let prop_floor_ceil =
  QCheck2.Test.make ~name:"floor <= q <= ceil, within 1" ~count:500 arb_q
    (fun a ->
      let f = Q.floor a and c = Q.ceil a in
      Q.(Q.of_int f <= a) && Q.(a <= Q.of_int c) && c - f <= 1)

let () =
  Alcotest.run "util"
    [
      ( "intmath",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "divisions" `Quick test_divisions;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "lists" `Quick test_lists;
        ] );
      ( "q",
        [
          Alcotest.test_case "normalization" `Quick test_q_normalization;
          Alcotest.test_case "arithmetic" `Quick test_q_arith;
          Alcotest.test_case "compare" `Quick test_q_compare;
          Alcotest.test_case "rounding" `Quick test_q_rounding;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "percentile interpolation" `Quick
            test_stats_percentile_interpolation;
          Alcotest.test_case "add after percentile" `Quick test_stats_add_after_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "variance at large offset" `Quick
            test_stats_variance_large_offset;
          Alcotest.test_case "weighted basics" `Quick
            test_stats_weighted_basics;
        ] );
      ( "mix64",
        [
          Alcotest.test_case "decorrelates consecutive seeds" `Quick
            test_mix64_decorrelates;
          Alcotest.test_case "avalanche" `Quick test_mix64_avalanche;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers every index" `Quick
            test_pool_parallel_for;
          Alcotest.test_case "single domain runs inline" `Quick
            test_pool_single_domain_inline;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "racing errors surface one" `Quick
            test_pool_error_race;
          Alcotest.test_case "empty and bad inputs" `Quick test_pool_empty_and_bad;
        ] );
      ( "stats-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_stats_percentiles_monotone; prop_stats_weighted_equals_expanded ] );
      ( "q-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_commutative;
            prop_add_associative;
            prop_mul_distributes;
            prop_compare_matches_float;
            prop_floor_ceil;
          ] );
    ]
