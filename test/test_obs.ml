(* The observability layer: sharded registry, log-bucketed histograms,
   ring-buffer tracer, snapshots and their JSON round-trip, plus the
   cross-layer guarantees the instrumentation relies on — parallel
   counter exactness under the domain pool and byte-identical pipeline
   output with metrics on vs. off. *)

module Obs = Pindisk_obs
module Control = Obs.Control
module Registry = Obs.Registry
module Histogram = Obs.Histogram
module Trace = Obs.Trace
module Snapshot = Obs.Snapshot
module Pool = Pindisk_util.Pool
module Stats = Pindisk_util.Stats
module Ida = Pindisk_ida.Ida
module Program = Pindisk.Program
module Engine = Pindisk_sim.Engine
module Workload = Pindisk_sim.Workload
module Fault = Pindisk_sim.Fault
module Json = Pindisk_check.Json
module Metrics = Pindisk_check.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Every test owns the global registry/tracer for its duration: reset
   first, and force the flag rather than inheriting PINDISK_METRICS. *)
let with_metrics enabled f =
  Control.with_enabled enabled (fun () ->
      Snapshot.reset ();
      f ())

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_interning () =
  with_metrics true @@ fun () ->
  let a = Registry.counter "test.interned" in
  let b = Registry.counter "test.interned" in
  Registry.incr a;
  Registry.add b 2;
  check_int "one counter behind both handles" 3 (Registry.counter_value a);
  check_int "same value through either" 3 (Registry.counter_value b);
  let g = Registry.gauge "test.gauge" in
  Registry.set g 7;
  Registry.set (Registry.gauge "test.gauge") 9;
  check_int "gauge last write wins" 9 (Registry.gauge_value g);
  check_bool "listed under its name" true
    (List.assoc_opt "test.interned" (Registry.counters ()) = Some 3);
  let names = List.map fst (Registry.counters ()) in
  check_bool "enumeration sorted" true (List.sort compare names = names)

let test_registry_reset_in_place () =
  with_metrics true @@ fun () ->
  let c = Registry.counter "test.reset" in
  Registry.add c 41;
  Registry.reset ();
  check_int "zeroed" 0 (Registry.counter_value c);
  Registry.incr c;
  check_int "old handle still live" 1 (Registry.counter_value c)

(* Sharded merge: increments racing from every pool domain are never
   lost — the sum over shards is exactly the number of increments. *)
let test_registry_sharded_sum () =
  with_metrics true @@ fun () ->
  let c = Registry.counter "test.sharded" in
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let n = 10_000 in
      Pool.parallel_for pool ~n (fun i ->
          Registry.incr c;
          if i land 1 = 0 then Registry.add c 2);
      check_int "merged sum exact" (n + (2 * (n / 2))) (Registry.counter_value c))

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let interesting_values =
  [ min_int; -1000; -1; 0; 1; 2; 3; 5; 8; 22; 1023; 1024; 1025; 1 lsl 20;
    (1 lsl 40) + 17; max_int ]

let test_bucket_geometry () =
  List.iter
    (fun v ->
      let b = Histogram.bucket_of v in
      let lo, hi = Histogram.bucket_bounds b in
      check_bool (Printf.sprintf "value %d inside its bucket" v) true
        (lo <= v && v <= hi))
    interesting_values;
  let sorted = List.sort compare interesting_values in
  let bs = List.map Histogram.bucket_of sorted in
  check_bool "bucket_of monotone" true (List.sort compare bs = bs);
  check_int "non-positive bucket" 0 (Histogram.bucket_of (-5));
  Alcotest.check_raises "bucket_bounds range" (Invalid_argument "Histogram.bucket_bounds")
    (fun () -> ignore (Histogram.bucket_bounds Histogram.bucket_count))

let test_histogram_exact_stats () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 4; -2; 100; 4; 0 ];
  check_int "count" 5 (Histogram.count h);
  check_int "sum" 106 (Histogram.sum h);
  check_int "min" (-2) (Histogram.min_value h);
  check_int "max" 100 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 21.2 (Histogram.mean h);
  Histogram.reset h;
  check_int "reset count" 0 (Histogram.count h);
  Alcotest.check_raises "quantile of empty"
    (Invalid_argument "Histogram.quantile: empty") (fun () ->
      ignore (Histogram.quantile h 0.5))

(* The exact nearest-rank quantile the estimator is specified against. *)
let exact_quantile samples p =
  let arr = Array.of_list samples in
  Array.sort compare arr;
  let count = Array.length arr in
  let r =
    min (count - 1)
      (max 0 (int_of_float (ceil (p *. float_of_int count)) - 1))
  in
  arr.(r)

let sample_gen =
  QCheck2.Gen.(
    list_size (int_range 1 200)
      (oneof
         [
           int_range (-100) 100;
           int_range 0 1_000_000;
           map (fun e -> (1 lsl e) + Stdlib.min e 3) (int_range 0 55);
           int;
         ]))

(* Every estimated quantile lands in the same bucket as the exact
   sorted-sample quantile — i.e. within one bucket's relative-error
   bound (~sqrt 2) — and, being the bucket's upper bound, never below. *)
let prop_quantile_within_bucket =
  QCheck2.Test.make ~name:"quantile estimate within one bucket of exact"
    ~count:300 sample_gen (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.observe h) samples;
      List.for_all
        (fun p ->
          let exact = exact_quantile samples p in
          let est = Histogram.quantile h p in
          Histogram.bucket_of est = Histogram.bucket_of exact && est >= exact)
        [ 0.0; 0.01; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ])

(* merge h1 h2 = histogram of the concatenated samples, exactly. *)
let prop_merge_is_concat =
  QCheck2.Test.make ~name:"merge equals histogram of concatenation" ~count:300
    QCheck2.Gen.(pair (list sample_gen) sample_gen)
    (fun (lists, extra) ->
      let l1 = List.concat lists and l2 = extra in
      let build l =
        let h = Histogram.create () in
        List.iter (Histogram.observe h) l;
        h
      in
      let merged = Histogram.merge (build l1) (build l2) in
      let whole = build (l1 @ l2) in
      Histogram.count merged = Histogram.count whole
      && Histogram.sum merged = Histogram.sum whole
      && Histogram.min_value merged = Histogram.min_value whole
      && Histogram.max_value merged = Histogram.max_value whole
      && Histogram.buckets merged = Histogram.buckets whole)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let with_ring cap f =
  with_metrics true @@ fun () ->
  Trace.set_capacity cap;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_capacity 1024;
      Trace.reset ())
    f

let test_trace_ring_wraparound () =
  with_ring 8 @@ fun () ->
  for i = 1 to 20 do
    Trace.record (Trace.Slot { slot = i; file = i mod 3; index = i })
  done;
  check_int "all records counted" 20 (Trace.recorded ());
  check_int "ring capacity" 8 (Trace.capacity ());
  let events = Trace.events () in
  check_int "buffer holds last capacity events" 8 (List.length events);
  List.iteri
    (fun j e ->
      check_int "ticks contiguous, oldest first" (13 + j) e.Trace.tick;
      match e.Trace.span with
      | Trace.Slot { slot; _ } -> check_int "payload follows tick" (13 + j) slot
      | _ -> Alcotest.fail "unexpected span")
    events

let test_trace_below_capacity () =
  with_ring 16 @@ fun () ->
  List.iter Trace.record
    [
      Trace.Fault_burst { slot = 5; length = 3 };
      Trace.Reconstruct { file = 1; pieces = 4; bytes = 200 };
      Trace.Hot_swap { slot = 9; cause = "test" };
    ];
  let events = Trace.events () in
  check_int "no phantom events" 3 (List.length events);
  check_int "ticks start at one" 1 (List.hd events).Trace.tick;
  Trace.reset ();
  check_int "reset clears count" 0 (Trace.recorded ());
  check_int "reset clears buffer" 0 (List.length (Trace.events ()))

let test_trace_disabled_is_noop () =
  with_metrics false @@ fun () ->
  Trace.record (Trace.Hot_swap { slot = 1; cause = "ignored" });
  check_int "nothing recorded while disabled" 0 (Trace.recorded ())

let test_control_restores_on_exception () =
  Control.set_enabled false;
  (try Control.with_enabled true (fun () -> failwith "boom") with
  | Failure _ -> ());
  check_bool "flag restored after raise" false (Control.enabled ())

(* ------------------------------------------------------------------ *)
(* Snapshot: capture, diff, JSON round-trip                            *)
(* ------------------------------------------------------------------ *)

let counter_of snap name =
  Option.value (List.assoc_opt name snap.Snapshot.counters) ~default:0

let hist_of snap name = List.assoc_opt name snap.Snapshot.histograms

let test_snapshot_diff () =
  with_metrics true @@ fun () ->
  let c = Registry.counter "test.diff.counter" in
  let g = Registry.gauge "test.diff.gauge" in
  let h = Registry.histogram "test.diff.hist" in
  Registry.add c 3;
  Registry.set g 5;
  List.iter (Histogram.observe h) [ 10; 20 ];
  Trace.record (Trace.Slot { slot = 1; file = 0; index = 0 });
  let s1 = Snapshot.take () in
  Registry.add c 4;
  Registry.set g 11;
  List.iter (Histogram.observe h) [ 40; 80; 160 ];
  Trace.record (Trace.Slot { slot = 2; file = 0; index = 1 });
  let s2 = Snapshot.take () in
  let d = Snapshot.diff s2 s1 in
  check_int "counter delta" 4 (counter_of d "test.diff.counter");
  check_int "gauge keeps later value" 11
    (Option.value (List.assoc_opt "test.diff.gauge" d.Snapshot.gauges) ~default:0);
  (match hist_of d "test.diff.hist" with
  | None -> Alcotest.fail "histogram missing from diff"
  | Some dh ->
      check_int "histogram count delta" 3 dh.Snapshot.count;
      check_int "histogram sum delta" 280 dh.Snapshot.sum);
  check_int "only new events" 1 (List.length d.Snapshot.events);
  check_int "new event tick" 2 (List.hd d.Snapshot.events).Trace.tick

let test_snapshot_quantiles_match_histogram () =
  with_metrics true @@ fun () ->
  let h = Registry.histogram "test.snap.q" in
  List.iter (Histogram.observe h) [ 1; 3; 9; 27; 81; 243; 729 ];
  let s = Snapshot.take () in
  match hist_of s "test.snap.q" with
  | None -> Alcotest.fail "histogram not captured"
  | Some sh ->
      List.iter
        (fun p ->
          check_int
            (Printf.sprintf "snapshot quantile p=%.2f" p)
            (Histogram.quantile h p) (Snapshot.quantile sh p))
        [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

(* A snapshot exercising every field and span type survives
   print -> parse -> print byte-for-byte. *)
let test_snapshot_json_roundtrip () =
  with_metrics true @@ fun () ->
  Registry.add (Registry.counter "test.json.counter") 12;
  Registry.set (Registry.gauge "test.json.gauge") (-3);
  let h = Registry.histogram "test.json.hist" in
  List.iter (Histogram.observe h) [ 0; 1; 7; 7; 1_000_000 ];
  Trace.record (Trace.Slot { slot = 3; file = 1; index = 4 });
  Trace.record (Trace.Fault_burst { slot = 5; length = 2 });
  Trace.record (Trace.Reconstruct { file = 1; pieces = 4; bytes = 4096 });
  Trace.record (Trace.Hot_swap { slot = 8; cause = "loss 0.4 -> \"shed\"" });
  Trace.record (Trace.Crash { slot = 9 });
  Trace.record (Trace.Recover { slot = 11; replayed = 3 });
  Trace.record (Trace.Retry { file = 1; attempt = 2; backoff = 16 });
  let s = Snapshot.take () in
  let str = Json.to_string (Metrics.snapshot_to_json s) in
  match Metrics.snapshot_of_string str with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok s' ->
      check_bool "snapshot survives round-trip" true (s = s');
      check_string "re-rendering is byte-stable" str
        (Json.to_string (Metrics.snapshot_to_json s'))

let test_snapshot_json_rejects () =
  let bad s =
    check_bool
      (Printf.sprintf "rejects %s" (String.sub s 0 (min 40 (String.length s))))
      true
      (Result.is_error (Metrics.snapshot_of_string s))
  in
  bad "{\"schema\": \"other v9\"}";
  bad "{\"schema\": \"pindisk-metrics v1\", \"tick\": 0}";
  bad
    "{\"schema\": \"pindisk-metrics v1\", \"tick\": 0, \"counters\": {}, \
     \"gauges\": {}, \"histograms\": {}, \"events\": [{\"tick\": 1, \
     \"span\": \"martian\"}]}";
  bad "not json at all"

(* ------------------------------------------------------------------ *)
(* Cross-layer: parallel exactness and metrics-off determinism         *)
(* ------------------------------------------------------------------ *)

let codec_counters snap =
  List.filter
    (fun (name, _) ->
      String.length name >= 4
      && (String.sub name 0 4 = "ida." || String.sub name 0 6 = "gf256."))
    snap.Snapshot.counters

(* The instrumented counters inside [Ida.disperse] are bumped from
   whichever domain runs each encode group; the sharded registry must
   report exactly the sequential totals, and the pieces themselves must
   be byte-identical. *)
let test_ida_parallel_counters_match_sequential () =
  with_metrics true @@ fun () ->
  let file = Bytes.init 262_144 (fun i -> Char.chr ((i * 131) land 0xff)) in
  let ida = Ida.create ~m:8 in
  let seq = Ida.disperse ida ~n:12 file in
  let seq_counts = codec_counters (Snapshot.take ()) in
  Snapshot.reset ();
  let pool = Pool.create ~domains:4 () in
  let par =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Ida.disperse ~pool ida ~n:12 file)
  in
  let par_snap = Snapshot.take () in
  check_int "same piece count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i p ->
      check_bool
        (Printf.sprintf "piece %d byte-identical" i)
        true
        (p.Ida.index = par.(i).Ida.index && Bytes.equal p.Ida.data par.(i).Ida.data))
    seq;
  check_bool "codec counters identical across domains" true
    (seq_counts = codec_counters par_snap);
  check_bool "pool actually fanned out" true
    (counter_of par_snap "pool.tasks.fanned" > 0)

module Cohort = Pindisk_sim.Cohort
module Pw = Pindisk_pinwheel

let cohort_counters snap =
  List.filter
    (fun (name, _) ->
      String.length name >= 6
      && (String.sub name 0 6 = "cohort" || String.sub name 0 6 = "drive."))
    snap.Snapshot.counters

(* Cohort classes shard across pool domains, but the sharded registry
   and the caller-side retirement fold must make the pooled run
   indistinguishable from the 1-domain run: same Engine.result, same
   merged drive.* / cohort.* counters. *)
let test_cohort_pool_matches_sequential () =
  with_metrics true @@ fun () ->
  let program = Program.of_layout
      [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]
      ~capacities:[ (0, 10); (1, 6) ]
  in
  let plan = Pw.Plan.explicit (Program.schedule program) in
  let capacities = [ (0, 10); (1, 6) ] in
  let trace =
    Workload.generate ~program ~rate:0.2 ~theta:0.8
      ~needed_of:(fun f -> if f = 0 then 5 else 3)
      ~deadline_of:(fun f -> if f = 0 then 7 else 9)
      ~horizon:1500 ~seed:4
  in
  let fault ~seed = Fault.bernoulli ~p:0.25 ~seed in
  let model =
    Cohort.Burst
      { p_good_to_bad = 0.2; p_bad_to_good = 0.4; loss_good = 0.05;
        loss_bad = 0.5 }
  in
  let classes = Cohort.classes_of_trace ~period:(Pw.Plan.period plan) trace in
  let seq = Cohort.run ~plan ~capacities ~fault ~seed:5 trace in
  let seq_pop =
    Cohort.run_population ~plan ~capacities ~model ~seed:5 classes
  in
  let seq_counts = cohort_counters (Snapshot.take ()) in
  Snapshot.reset ();
  let pool = Pool.create ~domains:4 () in
  let par, par_pop =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        ( Cohort.run ~pool ~plan ~capacities ~fault ~seed:5 trace,
          Cohort.run_population ~pool ~plan ~capacities ~model ~seed:5 classes
        ))
  in
  let par_counts = cohort_counters (Snapshot.take ()) in
  check_string "pooled run byte-identical"
    (Format.asprintf "%a" Engine.pp_result seq)
    (Format.asprintf "%a" Engine.pp_result par);
  check_string "pooled population byte-identical"
    (Format.asprintf "%a" Engine.pp_result seq_pop)
    (Format.asprintf "%a" Engine.pp_result par_pop);
  check_bool "merged drive.*/cohort.* counters identical" true
    (seq_counts = par_counts)

let toy_layout =
  [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]

let toy_program () =
  Program.of_layout toy_layout ~capacities:[ (0, 10); (1, 6) ]

let toy_trace program =
  Workload.generate ~program ~rate:0.2 ~theta:0.8
    ~needed_of:(fun f -> if f = 0 then 5 else 3)
    ~deadline_of:(fun f -> if f = 0 then 7 else 9)
    ~horizon:1500 ~seed:4

let run_engine () =
  let program = toy_program () in
  Engine.run ~program
    ~fault:(fun ~seed -> Fault.bernoulli ~p:0.25 ~seed)
    ~seed:5 (toy_trace program)

(* Instrumentation must not perturb the simulation: the result with
   metrics recording on is identical to the result with it off. *)
let test_engine_deterministic_with_metrics () =
  let off = with_metrics false run_engine in
  let on = with_metrics true run_engine in
  check_string "byte-identical pp_result"
    (Format.asprintf "%a" Engine.pp_result off)
    (Format.asprintf "%a" Engine.pp_result on);
  check_bool "workload has misses to compare" true (off.Engine.missed > 0)

(* The per-file histograms/counters recorded by [Engine.run] reconcile
   exactly with the [file_stats] it returns, and the aggregates with the
   per-file breakdown. *)
let test_engine_obs_reconciles_with_file_stats () =
  with_metrics true @@ fun () ->
  let r = run_engine () in
  let s = Snapshot.take () in
  check_int "engine.requests" r.Engine.requests (counter_of s "engine.requests");
  check_int "engine.completed" r.Engine.completed
    (counter_of s "engine.completed");
  check_int "engine.missed" r.Engine.missed (counter_of s "engine.missed");
  check_int "engine.losses" r.Engine.losses (counter_of s "engine.losses");
  (match hist_of s "engine.wait" with
  | None -> Alcotest.fail "engine.wait histogram missing"
  | Some h ->
      check_int "global wait count = completed" r.Engine.completed
        h.Snapshot.count;
      check_bool "global wait sum = latency total" true
        (float_of_int h.Snapshot.sum = Stats.total r.Engine.latency));
  List.iter
    (fun (f : Engine.file_stats) ->
      let miss_name = Printf.sprintf "engine.miss.%d" f.Engine.file in
      check_int miss_name f.Engine.missed (counter_of s miss_name);
      match hist_of s (Printf.sprintf "engine.wait.%d" f.Engine.file) with
      | None -> check_int "file with no completions" 0 (Stats.count f.Engine.latency)
      | Some h ->
          check_int
            (Printf.sprintf "file %d wait count" f.Engine.file)
            (Stats.count f.Engine.latency)
            h.Snapshot.count;
          check_bool
            (Printf.sprintf "file %d wait sum" f.Engine.file)
            true
            (float_of_int h.Snapshot.sum = Stats.total f.Engine.latency);
          check_bool
            (Printf.sprintf "file %d wait max" f.Engine.file)
            true
            (float_of_int h.Snapshot.hi = Stats.max_value f.Engine.latency))
    r.Engine.per_file;
  let sum_file_miss =
    List.fold_left
      (fun acc (f : Engine.file_stats) -> acc + f.Engine.missed)
      0 r.Engine.per_file
  in
  check_int "per-file misses reconcile with aggregate" r.Engine.missed
    sum_file_miss

let test_pool_fanout_metrics () =
  with_metrics true @@ fun () ->
  let pool = Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pool.parallel_for pool ~n:10 (fun _ -> ());
      let s = Snapshot.take () in
      check_int "one job" 1 (counter_of s "pool.jobs");
      check_int "all tasks fanned" 10 (counter_of s "pool.tasks.fanned");
      check_int "fan-out gauge records width" (Pool.size pool)
        (Option.value
           (List.assoc_opt "pool.fanout" s.Snapshot.gauges)
           ~default:0);
      (* Fewer tasks than domains: the gauge must report the parallelism
         actually available, not the pool width. *)
      Pool.parallel_for pool ~n:2 (fun _ -> ());
      let s = Snapshot.take () in
      check_int "scarce tasks cap the fan-out gauge" 2
        (Option.value
           (List.assoc_opt "pool.fanout" s.Snapshot.gauges)
           ~default:0);
      Pool.parallel_for pool ~n:1 (fun _ -> ());
      let s = Snapshot.take () in
      check_int "singleton runs inline" 1 (counter_of s "pool.tasks.inline"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "interning" `Quick test_registry_interning;
          Alcotest.test_case "reset in place" `Quick test_registry_reset_in_place;
          Alcotest.test_case "sharded sum across domains" `Quick
            test_registry_sharded_sum;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket geometry" `Quick test_bucket_geometry;
          Alcotest.test_case "exact stats" `Quick test_histogram_exact_stats;
          QCheck_alcotest.to_alcotest prop_quantile_within_bucket;
          QCheck_alcotest.to_alcotest prop_merge_is_concat;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_trace_ring_wraparound;
          Alcotest.test_case "below capacity" `Quick test_trace_below_capacity;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_trace_disabled_is_noop;
          Alcotest.test_case "with_enabled restores" `Quick
            test_control_restores_on_exception;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "interval diff" `Quick test_snapshot_diff;
          Alcotest.test_case "quantiles match histogram" `Quick
            test_snapshot_quantiles_match_histogram;
          Alcotest.test_case "json round-trip" `Quick
            test_snapshot_json_roundtrip;
          Alcotest.test_case "json rejects malformed" `Quick
            test_snapshot_json_rejects;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "ida parallel counters = sequential" `Quick
            test_ida_parallel_counters_match_sequential;
          Alcotest.test_case "cohort pool = sequential" `Quick
            test_cohort_pool_matches_sequential;
          Alcotest.test_case "engine deterministic under metrics" `Quick
            test_engine_deterministic_with_metrics;
          Alcotest.test_case "engine obs reconcile with file_stats" `Quick
            test_engine_obs_reconciles_with_file_stats;
          Alcotest.test_case "pool fan-out metrics" `Quick
            test_pool_fanout_metrics;
        ] );
    ]
