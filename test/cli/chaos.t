The chaos plane end to end. `pindisk chaos` runs the scripted
fault-injection suite — crashes with restart-from-checkpoint, a stuck
storage reader, loss bursts — under fixed seeds and checks the four
recovery invariants (bytes-identity, replay determinism, bounded gaps,
liveness). The suite is deterministic, so its verdict line is a golden:

  $ pindisk chaos | tail -1
  chaos: 7 scenario(s), 0 invariant violations

The scenario list is part of the CLI contract:

  $ pindisk chaos --list
  calm-baseline
  crash-early
  crash-late-long-outage
  double-crash
  stuck-reader
  overflow-pressure
  burst-plus-crash

A single scenario can be run by name; a crash scenario reports its
recovery time (wall slots from death until the server caught up):

  $ pindisk chaos --scenario crash-early | grep 'recovery slots'
    recovery slots: 11

Unknown names are an error:

  $ pindisk chaos --scenario no-such-thing
  pindisk: no such scenario
  [124]

The markdown summary artifact the CI job uploads:

  $ pindisk chaos --summary chaos_summary.md > /dev/null
  $ head -4 chaos_summary.md
  # Chaos scenario suite
  
  | scenario | verdict | crashes | down slots | faulted slots | replayed slots | recovery (slots) |
  |---|---|---|---|---|---|---|

  $ grep -c VIOLATED chaos_summary.md
  0
  [1]

With --metrics the run emits an observability snapshot carrying the
crash/recover trace spans and the recovery-time histogram:

  $ pindisk chaos --metrics chaos_metrics.json > /dev/null
  $ grep -o '"span": "crash"' chaos_metrics.json | sort -u
  "span": "crash"
  $ grep -o '"span": "recover"' chaos_metrics.json | sort -u
  "span": "recover"
  $ grep -o '"store.recovery"' chaos_metrics.json | sort -u
  "store.recovery"
