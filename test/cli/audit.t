The audit subcommand statically verifies a complete design: it rebuilds
the program, re-counts every fault level's windows, validates the
algebra's derivation traces with the independent kernel, and checks the
IDA dispersal matrices for the MDS property.

A generalized design (latency vectors):

  $ cat > tiny.design <<'EOF'
  > pindisk-design v1
  > bc 1 4,6
  > EOF
  $ pindisk audit tiny.design
  {
    "kind": "generalized",
    "ok": true,
    "period": 3,
    "density": {
      "num": 1,
      "den": 3
    },
    "band": "sa-guarantee",
    "files": [
      {
        "file": 0,
        "name": "F0",
        "m": 1,
        "tolerance": 1,
        "capacity": 2,
        "levels": [
          {
            "level": 0,
            "window": 4,
            "required": 1,
            "observed": 1,
            "ok": true
          },
          {
            "level": 1,
            "window": 6,
            "required": 2,
            "observed": 2,
            "ok": true
          }
        ],
        "mds": {
          "mode": "exhaustive",
          "subsets": 2,
          "ok": true
        }
      }
    ],
    "trace_validation": {
      "accepted": true,
      "traces": 1,
      "steps": 2
    },
    "traces": [
      {
        "file": 0,
        "m": 1,
        "d": [
          4,
          6
        ],
        "transform": "TR1",
        "nice": [
          {
            "a": 1,
            "b": 3
          }
        ],
        "steps": [
          {
            "rule": "implies",
            "premise": {
              "kind": "emitted",
              "index": 0
            },
            "scale": 1,
            "target": {
              "a": 1,
              "b": 4
            }
          },
          {
            "rule": "implies",
            "premise": {
              "kind": "emitted",
              "index": 0
            },
            "scale": 2,
            "target": {
              "a": 2,
              "b": 6
            }
          }
        ]
      }
    ],
    "problems": [],
    "warnings": []
  }

A physical deployment goes through Designer.plan; the simple-model
reduction's trace is validated the same way:

  $ cat > note.design <<'EOF'
  > pindisk-design v1
  > rate 1024
  > require note 900 4 1
  > EOF
  $ pindisk audit note.design --minify
  {"kind":"designer","ok":true,"period":4,"density":{"num":1,"den":2},"band":"sa-guarantee","files":[{"file":0,"name":"note","m":1,"tolerance":1,"capacity":2,"levels":[{"level":0,"window":4,"required":1,"observed":2,"ok":true},{"level":1,"window":4,"required":2,"observed":2,"ok":true}],"mds":{"mode":"exhaustive","subsets":2,"ok":true}}],"trace_validation":{"accepted":true,"traces":1,"steps":2},"traces":[{"file":0,"m":1,"d":[4,4],"transform":"reduction","nice":[{"a":2,"b":4}],"steps":[{"rule":"implies","premise":{"kind":"emitted","index":0},"scale":1,"target":{"a":1,"b":4}},{"rule":"implies","premise":{"kind":"emitted","index":0},"scale":1,"target":{"a":2,"b":4}}]}],"problems":[],"warnings":[]}

An infeasible design has nothing to audit — the failure is explained and
the exit code is nonzero:

  $ cat > impossible.design <<'EOF'
  > pindisk-design v1
  > rate 64
  > require big 100000 2 3
  > EOF
  $ pindisk audit impossible.design
  pindisk: impossible.design: design infeasible: big needs 100000+3 dispersed blocks at 1-byte blocks (IDA caps at 255)
  [124]

So does a malformed spec:

  $ cat > mixed.design <<'EOF'
  > pindisk-design v1
  > rate 64
  > require a 100 5
  > bc 1 6
  > EOF
  $ pindisk audit mixed.design
  pindisk: mixed.design: rate/require and bc stanzas cannot be mixed
  [124]
