The --online flag runs the lazy dispatcher next to the eager schedule
and checks them slot for slot (the density pre-check verdict rides
along):

  $ pindisk schedule -t 1/2 -t 1/3 --online
  system: {(0, 1, 2); (1, 1, 3)}
  density: 5/6
  pre-check: schedulable (density 5/6 <= 5/6: Kawamura density threshold)
  schedule (period 2): 0 1
  online (period 2): 0 1
  online matches eager over 2 periods: true

  $ pindisk schedule -t 2/5 -t 1/3 --online
  system: {(0, 2, 5); (1, 1, 3)}
  density: 11/15
  pre-check: schedulable (density 11/15 <= 5/6: Kawamura density threshold)
  schedule (period 3): 0 0 1
  online (period 3): 0 0 1
  online matches eager over 2 periods: true

The pre-check rejects the paper's Example-1 family ({2, 3, M}) before
any construction is attempted:

  $ pindisk schedule -t 1/2 -t 1/3 -t 1/12 --online
  system: {(0, 1, 2); (1, 1, 3); (2, 1, 12)}
  density: 11/12
  pre-check: infeasible (contains {2, 3, _}: infeasible for every third task)
  pindisk: no schedule found by auto
  [124]

sched-bench --check replays online against eager over two hyperperiods
for each size of the e21 family:

  $ pindisk sched-bench --check
  n=16: period 64, online matches eager over 2 periods: true
  n=64: period 256, online matches eager over 2 periods: true
  n=256: period 1024, online matches eager over 2 periods: true

  $ pindisk sched-bench --check -n 8 -n 32
  n=8: period 32, online matches eager over 2 periods: true
  n=32: period 128, online matches eager over 2 periods: true

Sizes must be powers of two (the family's windows are dyadic):

  $ pindisk sched-bench --check -n 12
  pindisk: sizes must be powers of two >= 8
  [124]
