Design a disk from physical requirements:

  $ pindisk design --rate 8192 -r alerts:3000:4:2 -r bulk:60000:60
  broadcast-disk plan: 8192-byte blocks, 1 blocks/sec, period 32 slots, data cycle 32, channel 1 busy
    alerts       m=1   r=2 N=3   window=4    slots/period=24  Delta=2
    bulk         m=8   r=0 N=8   window=60   slots/period=8   Delta=4

  $ pindisk design --rate 4 -r alerts:3000:4:2
  pindisk: no feasible plan: alerts needs 3000+2 dispersed blocks at 1-byte blocks (IDA caps at 255)
  [124]

Export a program, inspect it, and confirm the file round-trips:

  $ pindisk export -f a:2:4:1 -f b:4:12 -o prog.bdp
  wrote prog.bdp (bandwidth 2 blocks/sec)

  $ pindisk inspect prog.bdp
  period: 16 slots; data cycle: 16 slots
    file 0: 6 slots/period, capacity 3, max spacing 6
    file 1: 4 slots/period, capacity 4, max spacing 7
  layout: 0:0 0:1 0:2 1:0 1:1 . . . 0:0 0:1 0:2 1:2 1:3 . . .

  $ pindisk export -f a:2:4:1 -f b:4:12 | head -3
  pindisk-program v1
  capacity 0 3
  capacity 1 4

A corrupt program file is rejected with a reason:

  $ printf 'pindisk-program v1\ncapacity 0 5\nlayout 0:0 0:0\n' > broken.bdp
  $ pindisk inspect broken.bdp
  pindisk: Program.of_layout: file 0 occurrence 1 carries block 0, expected 1 (capacity 5)
  [124]

The full system over a pipe: broadcast IDA-dispersed content, lose 30% of
receptions, reconstruct anyway:

  $ pindisk serve -c "alerts:2:4:2=EVACUATE SECTOR 9" --slots 24 \
  >   | pindisk receive --file 0 --loss 0.3 2>/dev/null
  EVACUATE SECTOR 9
