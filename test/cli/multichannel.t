Multi-channel sharding: `--channels K` shards the system over K
parallel broadcast channels with the density-balanced LPT packer. A
task system of density 5/4 cannot fit one channel; four channels
carry it with nothing shed, each channel's schedule printed with its
exact density:

  $ pindisk schedule -t 1/4 -t 1/4 -t 1/4 -t 1/4 -t 1/8 -t 1/8 --channels 4
  system: {(0, 1, 4); (1, 1, 4); (2, 1, 4); (3, 1, 4); (4, 1, 8); (5, 1, 8)}
  density: 5/4
  channels: 4
  channel 0: {(0, 1, 4); (4, 1, 8)}
    density: 3/8
    schedule (period 8): 0 4 . . 0 . . .
  channel 1: {(1, 1, 4); (5, 1, 8)}
    density: 3/8
    schedule (period 8): 1 5 . . 1 . . .
  channel 2: {(2, 1, 4)}
    density: 1/4
    schedule (period 4): 2 . . .
  channel 3: {(3, 1, 4)}
    density: 1/4
    schedule (period 4): 3 . . .

The sharded cohort path: a 4-file population over 4 channels, folded
per channel analytically and certified by shardcheck before a single
client runs. No RNG anywhere, so the output is a stable golden:

  $ pindisk simulate --cohort -f news:4:40 -f weather:2:40:1 -f sports:4:40 -f traffic:2:40 --loss 0.1 --clients 9600 --channels 4 --tuners 2 > out.txt
  $ grep -o 'channels 4, per-channel bandwidth 1, tuners 2' out.txt
  channels 4, per-channel bandwidth 1, tuners 2
  $ grep -o 'shed: 0 file(s)' out.txt
  shed: 0 file(s)
  $ grep -o 'shardcheck: ok' out.txt
  shardcheck: ok
  $ grep -o 'cohort: 9600 clients in 64 classes (per-channel fold)' out.txt
  cohort: 9600 clients in 64 classes (per-channel fold)
  $ grep -oE 'weather +2400 +64' out.txt
  weather           2400        64
  $ grep -oE 'overall +9600 +2144' out.txt
  overall           9600      2144

A second invocation is byte-identical:

  $ pindisk simulate --cohort -f news:4:40 -f weather:2:40:1 -f sports:4:40 -f traffic:2:40 --loss 0.1 --clients 9600 --channels 4 --tuners 2 > again.txt
  $ cmp out.txt again.txt

With --metrics the channel.* namespace lands in the snapshot: the
design gauges, every request finding a serving channel, and the
per-channel request split:

  $ pindisk simulate --cohort -f news:4:40 -f weather:2:40:1 -f sports:4:40 -f traffic:2:40 --loss 0.1 --clients 9600 --channels 4 --tuners 2 --metrics snap.json > /dev/null
  $ grep -o '"channel.channels": 4' snap.json
  "channel.channels": 4
  $ grep -o '"channel.tuners": 2' snap.json
  "channel.tuners": 2
  $ grep -o '"channel.assigned": 9600' snap.json
  "channel.assigned": 9600
  $ grep -o '"channel.unserved": 0' snap.json
  "channel.unserved": 0
  $ grep -o '"channel.0.requests": 2400' snap.json
  "channel.0.requests": 2400
  $ grep -o '"channel.3.requests": 2400' snap.json
  "channel.3.requests": 2400

--channels 1 is the unchanged single-channel pipeline — byte-identical
output with and without the flag:

  $ pindisk simulate --cohort -f news:4:40 -f weather:2:40:1 --loss 0.1 --clients 9600 > k1_default.txt
  $ pindisk simulate --cohort -f news:4:40 -f weather:2:40:1 --loss 0.1 --clients 9600 --channels 1 > k1_explicit.txt
  $ cmp k1_default.txt k1_explicit.txt
