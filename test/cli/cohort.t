The cohort population path: `pindisk simulate --cohort` folds a
closed-form client population analytically — no RNG anywhere — so its
output is a stable golden. 9600 clients split over 2 files x 16 phases:

  $ pindisk simulate --cohort -f news:4:40 -f weather:2:40:1 --loss 0.1 --clients 9600 > out.txt
  $ grep -o 'bandwidth 1, period 40' out.txt
  bandwidth 1, period 40
  $ grep -o 'cohort: 9600 clients in 32 classes (analytic fold)' out.txt
  cohort: 9600 clients in 32 classes (analytic fold)
  $ grep -oE 'news +4800 +1648' out.txt
  news              4800      1648
  $ grep -oE 'weather +4800 +128' out.txt
  weather           4800       128
  $ grep -oE 'overall +9600 +1776' out.txt
  overall           9600      1776
  $ grep -o 'losses absorbed: 3488' out.txt
  losses absorbed: 3488

The run is deterministic end to end — a second invocation is
byte-identical:

  $ pindisk simulate --cohort -f news:4:40 -f weather:2:40:1 --loss 0.1 --clients 9600 > again.txt
  $ cmp out.txt again.txt

With --metrics the cohort.* namespace lands in the snapshot: every
member retired, all 32 classes folded analytically (zero swept
member-slots):

  $ pindisk simulate --cohort -f news:4:40 -f weather:2:40:1 --loss 0.1 --clients 9600 --metrics snap.json > /dev/null
  $ grep -o '"cohort.requests": 9600' snap.json
  "cohort.requests": 9600
  $ grep -o '"cohort.classes": 32' snap.json
  "cohort.classes": 32
  $ grep -o '"cohort.analytic": 32' snap.json
  "cohort.analytic": 32
  $ grep -o '"cohort.missed": 1776' snap.json
  "cohort.missed": 1776

Without --cohort the per-client trial path is untouched:

  $ pindisk simulate -f news:4:40 --loss 0 --trials 8 | grep -o '8 trials: 8 completed, 0 missed deadline'
  8 trials: 8 completed, 0 missed deadline
