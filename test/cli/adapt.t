The adapt command replays one scripted channel (good -> bad -> good) and
one request trace against a static server and a closed-loop adaptive one.
The adaptive server estimates the loss rate online, boosts redundancy when
the bad phase is confirmed, and swaps programs only at cycle boundaries
(phase 0 in the log), walking back when the channel recovers:

  $ pindisk adapt --phase 1000:0.01 --phase 2000:0.4 --phase 1000:0.01 --rate 0.06
  bandwidth 4 blocks/sec; 212 requests over 4000 slots
  phase (slots at rate)        static   adaptive
  0..1000 @ 1%                   2.1%       2.1%
  1000..3000 @ 40%              37.5%      26.0%
  3000..4000 @ 1%                3.3%       3.3%
  overall                       19.8%      14.2%
  swap log:
    slot 1280 (phase 0): eac5c2d8 -> 71f3abfb: loss estimate 0.270 -> level storm (boost 2, boost+2)
    slot 3328 (phase 0): 71f3abfb -> eac5c2d8: loss estimate 0.005 -> level clear (boost 0, baseline)

Phase rates above 75% are rejected (the burst channel cannot realize them):

  $ pindisk adapt --phase 100:0.9
  pindisk: bad phase "100:0.9" (want LEN:RATE, rate <= 0.75)
  [124]
