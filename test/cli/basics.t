The schedule command places the paper's Example-1 system:

  $ pindisk schedule -t 1/2 -t 1/3
  system: {(0, 1, 2); (1, 1, 3)}
  density: 5/6
  schedule (period 2): 0 1

Multi-unit tasks work too (Example 1, second instance):

  $ pindisk schedule -t 2/5 -t 1/3
  system: {(0, 2, 5); (1, 1, 3)}
  density: 11/15
  schedule (period 3): 0 0 1

The analyzer explains infeasibility with a certificate:

  $ pindisk analyze -t 1/2 -t 1/3 -t 1/12
  density 11/12; 3 distinct window(s); INFEASIBLE: exhaustive search: no infinite schedule

  $ pindisk analyze -t 3/4 -t 1/2
  density 5/4; 2 distinct window(s), harmonic, multi-unit; INFEASIBLE: density 5/4 > 1

Bandwidth bounds (Equations 1-2):

  $ pindisk bandwidth -f news:4:10:1
  demand (lower bound): 1/2 blocks/sec
  equation-2 sufficient bandwidth: 1 blocks/sec
  smallest schedulable bandwidth: 1 (overhead 2.00x)

The pinwheel algebra on the paper's Example 4:

  $ pindisk convert "4:8,9"
  condition: bc(0, 4, [8; 9])
  density lower bound: 5/9
    TR1      density 1       : pc(1,1)
    TR2      density 3/5     : pc(1,2) pc(1,10)
    single   density 5/9     : pc(5,9)
  winner: single
    best     density 5/9     : pc(5,9)

Errors are reported, not crashed on:

  $ pindisk schedule -t nonsense
  pindisk: bad task "nonsense" (want A/B)
  [124]

  $ pindisk convert "0:3"
  pindisk: Bc.make: m must be >= 1
  [124]
