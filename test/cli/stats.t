The observability layer end to end. `pindisk stats` runs a canned,
fully seeded pipeline (designer, engine workload, IDA transport
retrievals) with metrics enabled and prints the snapshot as JSON:

  $ pindisk stats > snap.json
  $ grep -o '"schema": "pindisk-metrics v1"' snap.json
  "schema": "pindisk-metrics v1"

The canned run is deterministic, so its counters are stable goldens —
every layer of the pipeline contributed:

  $ grep -o '"ida.reconstruct.calls": [0-9]*' snap.json
  "ida.reconstruct.calls": 2
  $ grep -o '"engine.requests": [0-9]*' snap.json
  "engine.requests": 16
  $ grep -co '"span": "slot"' snap.json
  12
  $ grep -o '"span": "reconstruct"' snap.json | sort -u
  "span": "reconstruct"

Parsing a saved snapshot back and re-printing it is byte-lossless
(the round trip the Check.Json float/string emitters guarantee):

  $ pindisk stats --check snap.json > reprint.json
  $ cmp snap.json reprint.json

Same through the single-line rendering:

  $ pindisk stats --minify > mini.json
  $ pindisk stats --check mini.json --minify > mini2.json
  $ cmp mini.json mini2.json

The --metrics flag on existing subcommands captures that run's
snapshot to a file, parseable under the same schema:

  $ pindisk simulate -f news:4:10:1 --trials 3 --metrics met.json > /dev/null
  $ pindisk stats --check met.json > /dev/null

Corrupted snapshots are rejected with a located reason:

  $ echo '{"schema": "pindisk-metrics v9"}' > bad.json
  $ pindisk stats --check bad.json
  pindisk: bad.json: unsupported schema "pindisk-metrics v9" (want "pindisk-metrics v1")
  [124]
