module A = Pindisk_algebra
module Bc = A.Bc
module Rules = A.Rules
module Convert = A.Convert
module P = Pindisk_pinwheel
module Task = P.Task
module Schedule = P.Schedule
module Verify = P.Verify
module Scheduler = P.Scheduler
module Q = Pindisk_util.Q

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q_str = Q.to_string
let pc a b = Task.make ~id:0 ~a ~b

(* ------------------------------------------------------------------ *)
(* Bc                                                                  *)
(* ------------------------------------------------------------------ *)

let test_bc_make () =
  let bc = Bc.make ~file:1 ~m:5 ~d:[ 100; 105; 110 ] in
  check_int "faults" 2 (Bc.faults_tolerated bc);
  Alcotest.check_raises "unsatisfiable"
    (Invalid_argument "Bc.make: unsatisfiable: d^(1) = 5 < m + 1 = 6") (fun () ->
      ignore (Bc.make ~file:0 ~m:5 ~d:[ 5; 5 ]));
  Alcotest.check_raises "empty vector" (Invalid_argument "Bc.make: empty latency vector")
    (fun () -> ignore (Bc.make ~file:0 ~m:1 ~d:[]))

let test_bc_to_pcs () =
  (* Equation 3. *)
  let bc = Bc.make ~file:3 ~m:2 ~d:[ 5; 6; 6 ] in
  Alcotest.(check (list (triple int int int)))
    "pc(2,5), pc(3,6), pc(4,6)"
    [ (3, 2, 5); (3, 3, 6); (3, 4, 6) ]
    (List.map (fun t -> (t.Task.id, t.Task.a, t.Task.b)) (Bc.to_pcs bc))

let test_bc_density_lower_bound () =
  (* Example 2: max{0.05, 6/105, 7/110, 8/115, 9/120} = 9/120 = 0.075. *)
  let bc = Bc.make ~file:0 ~m:5 ~d:[ 100; 105; 110; 115; 120 ] in
  Alcotest.(check string) "3/40" "3/40" (q_str (Bc.density_lower_bound bc));
  (* Example 4: bc(4, [8; 9]): max{1/2, 5/9} = 5/9. *)
  let bc4 = Bc.make ~file:0 ~m:4 ~d:[ 8; 9 ] in
  Alcotest.(check string) "5/9" "5/9" (q_str (Bc.density_lower_bound bc4))

let test_bc_check () =
  (* Schedule "1 . 1 ." satisfies bc(1, 1, [2]) but not bc(1, 1, [2; 3]). *)
  let s = Schedule.make [| 1; Schedule.idle; 1; Schedule.idle |] in
  check_bool "bc(1,[2]) holds" true (Bc.check s (Bc.make ~file:1 ~m:1 ~d:[ 2 ]) = None);
  check_bool "bc(1,[2;3]) fails" true (Bc.check s (Bc.make ~file:1 ~m:1 ~d:[ 2; 3 ]) <> None)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_r0 () =
  (match Rules.r0 (pc 3 5) ~x:1 ~y:2 with
  | Some t ->
      check_int "a" 2 t.Task.a;
      check_int "b" 7 t.Task.b
  | None -> Alcotest.fail "r0 applies");
  check_bool "a-x < 1" true (Rules.r0 (pc 1 5) ~x:1 ~y:0 = None)

let test_r1 () =
  let t = Rules.r1 (pc 2 3) ~n:2 in
  check_int "a" 4 t.Task.a;
  check_int "b" 6 t.Task.b

let test_r2 () =
  (match Rules.r2 (pc 2 3) ~x:1 with
  | Some t ->
      check_int "a" 1 t.Task.a;
      check_int "b" 2 t.Task.b
  | None -> Alcotest.fail "r2 applies");
  check_bool "too much" true (Rules.r2 (pc 2 3) ~x:2 = None)

let test_r1_reduce () =
  let t = Rules.r1_reduce (pc 4 8) in
  check_int "a" 1 t.Task.a;
  check_int "b" 2 t.Task.b;
  let u = Rules.r1_reduce (pc 2 5) in
  check_int "coprime untouched a" 2 u.Task.a;
  check_int "coprime untouched b" 5 u.Task.b

let test_r3 () =
  (* TR1 inner step: pc(m+j, d_j) <= pc(1, floor(d_j / (m+j))). *)
  let t = Rules.r3 (pc 6 105) in
  check_int "b" 17 t.Task.b;
  check_int "a" 1 t.Task.a

let test_implies_examples () =
  (* From the paper's worked examples. *)
  check_bool "pc(2,3) => pc(4,6) (R1)" true (Rules.implies (pc 2 3) (pc 4 6));
  check_bool "pc(2,3) => pc(2,5) (R0)" true (Rules.implies (pc 2 3) (pc 2 5));
  check_bool "pc(2,3) => pc(1,2) (R2)" true (Rules.implies (pc 2 3) (pc 1 2));
  check_bool "pc(4,6) => pc(3,6)" true (Rules.implies (pc 4 6) (pc 3 6));
  check_bool "pc(1,2) => pc(4,8)" true (Rules.implies (pc 1 2) (pc 4 8));
  check_bool "pc(1,2) /=> pc(5,9)" false (Rules.implies (pc 1 2) (pc 5 9));
  check_bool "pc(2,3) => pc(5,9)" true (Rules.implies (pc 2 3) (pc 5 9));
  check_bool "pc(1,3) /=> pc(1,2)" false (Rules.implies (pc 1 3) (pc 1 2));
  check_bool "reflexive" true (Rules.implies (pc 3 7) (pc 3 7))

let test_implies_is_sound_on_schedules () =
  (* Soundness spot-check: whenever implies got want, every schedule
     satisfying got satisfies want. Exhaust small cases using exact
     schedules of got as a single-task system. *)
  for a = 1 to 4 do
    for b = a to 8 do
      for c = 1 to 4 do
        for e = c to 8 do
          if Rules.implies (pc a b) (pc c e) then begin
            (* Periodic schedule placing [a] occurrences evenly in [b] slots
               satisfies pc(a,b); check it also satisfies pc(c,e). *)
            let slots = Array.make b Schedule.idle in
            for k = 0 to a - 1 do
              slots.(k * b / a) <- 0
            done;
            let s = Schedule.make slots in
            if Verify.check_pc s ~task:0 ~a ~b = None then
              check_bool
                (Printf.sprintf "(%d,%d) => (%d,%d) sound" a b c e)
                true
                (Verify.check_pc s ~task:0 ~a:c ~b:e = None)
          end
        done
      done
    done
  done

let test_max_guaranteed () =
  (* pc(2,35) forces 6 occurrences into every window of 110 (Example 3). *)
  check_int "g = 6" 6 (Rules.max_guaranteed (pc 2 35) ~window:110);
  check_int "g = 4" 4 (Rules.max_guaranteed (pc 1 2) ~window:9);
  check_int "none" 0 (Rules.max_guaranteed (pc 1 10) ~window:5)

let test_r4_r5_alias () =
  Alcotest.(check (option (pair int int)))
    "r4: base (4,8), target (5,9)" (Some (1, 9))
    (Rules.r4_alias ~base:(pc 4 8) ~target:(pc 5 9));
  Alcotest.(check (option (pair int int)))
    "r4 window shrank" None
    (Rules.r4_alias ~base:(pc 4 8) ~target:(pc 5 7));
  (* Example 4: base reduced to (1,2); target (5,9): n = 5, alias (1, 10). *)
  Alcotest.(check (option (pair int int)))
    "r5" (Some (1, 10))
    (Rules.r5_alias ~base:(pc 1 2) ~target:(pc 5 9));
  Alcotest.(check (option (pair int int)))
    "r5 base suffices" None
    (Rules.r5_alias ~base:(pc 1 2) ~target:(pc 4 8))

(* ------------------------------------------------------------------ *)
(* Convert: the paper's Examples 2-6                                  *)
(* ------------------------------------------------------------------ *)

let density_str nice = q_str (Convert.density nice)

let test_example2 () =
  (* F_i: m = 5, d = [100;105;110;115;120]. TR1 gives pc(1,13), density
     1/13 = 0.0769, within 2.5% of the 0.075 lower bound. *)
  let bc = Bc.make ~file:0 ~m:5 ~d:[ 100; 105; 110; 115; 120 ] in
  (match Convert.tr1 bc with
  | [ e ] ->
      check_int "window 13" 13 e.Convert.b;
      check_int "unit" 1 e.Convert.a
  | _ -> Alcotest.fail "tr1 yields one condition");
  let _, best = Convert.best bc in
  check_bool "best density <= 1/13" true
    Q.(Convert.density best <= Q.make 1 13)

let test_example3 () =
  (* m = 6, d = [105;110]: TR1 gives pc(1,15) (1/15 = 0.0667); TR2 gives
     pc(6,105) ^ pc(1,110): 6/105 + 1/110 = 0.0662, which wins. *)
  let bc = Bc.make ~file:0 ~m:6 ~d:[ 105; 110 ] in
  (match Convert.tr1 bc with
  | [ e ] -> check_int "tr1 window 15" 15 e.Convert.b
  | _ -> Alcotest.fail "tr1 yields one condition");
  let tr2 = Convert.tr2 bc in
  (* 6/105 + 1/110 = 2/35 + 1/110 = 44/770 + 7/770 = 51/770. *)
  Alcotest.(check string) "tr2 density" "51/770" (density_str tr2);
  let label, best = Convert.best bc in
  check_bool "paper's TR2 density achieved or beaten" true
    Q.(Convert.density best <= Q.make 51 770);
  ignore label

let test_example4 () =
  (* m = 4, d = [8;9]: paper reaches density 0.6 = 1/2 + 1/10 via
     pc(1,2) ^ pc(1,10). Lower bound 5/9. *)
  let bc = Bc.make ~file:0 ~m:4 ~d:[ 8; 9 ] in
  let tr2 = Convert.tr2 bc in
  Alcotest.(check string) "tr2 = paper's 3/5" "3/5" (density_str tr2);
  (match tr2 with
  | [ base; alias ] ->
      check_int "base a" 1 base.Convert.a;
      check_int "base b" 2 base.Convert.b;
      check_int "alias a" 1 alias.Convert.a;
      check_int "alias b" 10 alias.Convert.b
  | _ -> Alcotest.fail "tr2 yields base + one alias");
  let _, best = Convert.best bc in
  check_bool "best <= 3/5" true Q.(Convert.density best <= Q.make 3 5)

let test_example5 () =
  (* bc(2, [5;6;6]): the paper derives pc(2,3), density 2/3, equal to the
     lower bound (optimal). Our single-condition search must find it. *)
  let bc = Bc.make ~file:0 ~m:2 ~d:[ 5; 6; 6 ] in
  (match Convert.best_single bc with
  | [ e ] ->
      check_int "a = 2" 2 e.Convert.a;
      check_int "b = 3" 3 e.Convert.b
  | _ -> Alcotest.fail "single yields one condition");
  let _, best = Convert.best bc in
  Alcotest.(check string) "optimal 2/3" "2/3" (density_str best);
  Alcotest.(check string) "lower bound met" (q_str (Bc.density_lower_bound bc))
    (density_str best)

let test_example6 () =
  (* bc(1, [2;3]) = pc(1,2) ^ pc(2,3); pc(2,3) alone is equivalent
     (density 2/3), while literal TR2 would cost 1/2 + 2/3... the paper
     notes TR2 direct costs 1/2 + 1/3 = 5/6. *)
  let bc = Bc.make ~file:0 ~m:1 ~d:[ 2; 3 ] in
  (match Convert.best_single bc with
  | [ e ] ->
      check_int "a = 2" 2 e.Convert.a;
      check_int "b = 3" 3 e.Convert.b
  | _ -> Alcotest.fail "single yields one condition");
  let _, best = Convert.best bc in
  Alcotest.(check string) "2/3" "2/3" (density_str best)

let test_best_never_above_tr1_tr2 () =
  let bc = Bc.make ~file:0 ~m:3 ~d:[ 10; 12; 15 ] in
  let _, best = Convert.best bc in
  check_bool "<= tr1" true Q.(Convert.density best <= Convert.density (Convert.tr1 bc));
  check_bool "<= tr2" true Q.(Convert.density best <= Convert.density (Convert.tr2 bc))

let test_compile_nice_and_sound () =
  let bcs =
    [
      Bc.make ~file:0 ~m:2 ~d:[ 8; 10 ];
      Bc.make ~file:1 ~m:1 ~d:[ 6; 9; 12 ];
      Bc.make ~file:2 ~m:3 ~d:[ 30 ];
    ]
  in
  let tasks = Convert.compile bcs in
  check_bool "nice" true (Convert.is_nice tasks);
  check_bool "pseudo ids above file ids" true
    (List.for_all (fun (t, _) -> t.Task.id > 2) tasks);
  (* Schedule the nice system, project pseudo-tasks onto files, and check
     the ORIGINAL broadcast conditions. *)
  match Scheduler.schedule (List.map fst tasks) with
  | None -> Alcotest.fail "nice system should be schedulable"
  | Some sched ->
      let file_of =
        let tbl = Hashtbl.create 8 in
        List.iter (fun (t, f) -> Hashtbl.replace tbl t.Task.id f) tasks;
        fun id -> match Hashtbl.find_opt tbl id with Some f -> f | None -> Schedule.idle
      in
      let projected = Schedule.map_tasks sched file_of in
      List.iter
        (fun bc ->
          match Bc.check projected bc with
          | None -> ()
          | Some v -> Alcotest.failf "violated: %a" (fun ppf -> Verify.pp_violation ppf) v)
        bcs

let test_compile_duplicate_files () =
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Convert.compile: duplicate file ids") (fun () ->
      ignore
        (Convert.compile [ Bc.make ~file:0 ~m:1 ~d:[ 3 ]; Bc.make ~file:0 ~m:1 ~d:[ 4 ] ]))

(* qcheck: conversion soundness end-to-end on random broadcast conditions *)

let gen_bc =
  QCheck2.Gen.(
    let* file = int_range 0 3 in
    let* m = int_range 1 4 in
    let* r = int_range 0 3 in
    let* slack0 = int_range 1 24 in
    let* increments = list_size (return r) (int_range 0 6) in
    let d0 = (m * (slack0 + 1)) + (m / 2) in
    let rec build prev j = function
      | [] -> []
      | inc :: rest ->
          (* Keep the vector satisfiable: d_j >= m + j. *)
          let dj = max (prev + inc) (m + j) in
          dj :: build dj (j + 1) rest
    in
    return (Bc.make ~file ~m ~d:(d0 :: build d0 1 increments)))

let prop_conversion_sound =
  QCheck2.Test.make ~name:"best conversion implies the bc (via schedule check)" ~count:120
    gen_bc
    (fun bc ->
      let _, nice = Convert.best bc in
      (* Build a schedule satisfying exactly the nice conditions, with each
         entry as its own task, then check the original bc on the
         projection. Use the scheduler; skip instances it cannot place. *)
      let tasks =
        List.mapi (fun i e -> (Task.make ~id:(i + 10) ~a:e.Convert.a ~b:e.Convert.b, e.Convert.file)) nice
      in
      match Scheduler.schedule (List.map fst tasks) with
      | None -> true (* inconclusive: heuristic scheduler failed *)
      | Some sched ->
          let file_of id =
            match List.assoc_opt id (List.map (fun (t, f) -> (t.Task.id, f)) tasks) with
            | Some f -> f
            | None -> Pindisk_pinwheel.Schedule.idle
          in
          let projected = Schedule.map_tasks sched file_of in
          Bc.check projected bc = None)

let prop_density_at_least_lower_bound =
  QCheck2.Test.make ~name:"candidate densities respect the lower bound" ~count:200 gen_bc
    (fun bc ->
      let lb = Bc.density_lower_bound bc in
      let _, nice = Convert.best bc in
      Q.( >= ) (Convert.density nice) lb)

let () =
  Alcotest.run "algebra"
    [
      ( "bc",
        [
          Alcotest.test_case "make" `Quick test_bc_make;
          Alcotest.test_case "equation 3" `Quick test_bc_to_pcs;
          Alcotest.test_case "density lower bound" `Quick test_bc_density_lower_bound;
          Alcotest.test_case "check against schedule" `Quick test_bc_check;
        ] );
      ( "rules",
        [
          Alcotest.test_case "r0" `Quick test_r0;
          Alcotest.test_case "r1" `Quick test_r1;
          Alcotest.test_case "r2" `Quick test_r2;
          Alcotest.test_case "r1_reduce" `Quick test_r1_reduce;
          Alcotest.test_case "r3" `Quick test_r3;
          Alcotest.test_case "implies: paper examples" `Quick test_implies_examples;
          Alcotest.test_case "implies soundness on schedules" `Quick
            test_implies_is_sound_on_schedules;
          Alcotest.test_case "max_guaranteed" `Quick test_max_guaranteed;
          Alcotest.test_case "r4/r5 aliases" `Quick test_r4_r5_alias;
        ] );
      ( "convert",
        [
          Alcotest.test_case "paper example 2" `Quick test_example2;
          Alcotest.test_case "paper example 3" `Quick test_example3;
          Alcotest.test_case "paper example 4" `Quick test_example4;
          Alcotest.test_case "paper example 5" `Quick test_example5;
          Alcotest.test_case "paper example 6" `Quick test_example6;
          Alcotest.test_case "best dominates tr1/tr2" `Quick test_best_never_above_tr1_tr2;
          Alcotest.test_case "compile: nice + sound" `Quick test_compile_nice_and_sound;
          Alcotest.test_case "compile: duplicate files" `Quick test_compile_duplicate_files;
        ] );
      ( "convert-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_conversion_sound; prop_density_at_least_lower_bound ] );
    ]
