module Program = Pindisk.Program
module Bounds = Pindisk.Bounds
module Fault = Pindisk_sim.Fault
module Client = Pindisk_sim.Client
module Adversary = Pindisk_sim.Adversary
module Experiment = Pindisk_sim.Experiment

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let toy_layout =
  [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]

let toy_flat () = Program.of_layout toy_layout ~capacities:[ (0, 5); (1, 3) ]
let toy_ida () = Program.of_layout toy_layout ~capacities:[ (0, 10); (1, 6) ]

(* ------------------------------------------------------------------ *)
(* Fault                                                               *)
(* ------------------------------------------------------------------ *)

let test_fault_none () =
  let f = Fault.none () in
  for _ = 1 to 100 do
    check_bool "never loses" false (Fault.advance f)
  done

let test_fault_deterministic () =
  let f = Fault.deterministic (fun t -> t mod 3 = 1) in
  Alcotest.(check (list bool)) "scripted" [ false; true; false; false; true ]
    (List.init 5 (fun _ -> Fault.advance f));
  Fault.reset_to f 1;
  check_bool "reset re-anchors" true (Fault.advance f)

let test_fault_bernoulli_reproducible () =
  let f1 = Fault.bernoulli ~p:0.3 ~seed:7 in
  let f2 = Fault.bernoulli ~p:0.3 ~seed:7 in
  let a = List.init 200 (fun _ -> Fault.advance f1) in
  let b = List.init 200 (fun _ -> Fault.advance f2) in
  check_bool "same seed, same losses" true (a = b);
  Fault.reset_to f1 0;
  let a' = List.init 200 (fun _ -> Fault.advance f1) in
  check_bool "reset replays" true (a = a')

let test_fault_bernoulli_rate () =
  let f = Fault.bernoulli ~p:0.25 ~seed:42 in
  let n = 20_000 in
  let losses = ref 0 in
  for _ = 1 to n do
    if Fault.advance f then incr losses
  done;
  let rate = float_of_int !losses /. float_of_int n in
  check_bool "empirical rate near 0.25" true (abs_float (rate -. 0.25) < 0.02);
  Alcotest.(check (float 1e-9)) "declared rate" 0.25 (Fault.loss_rate f)

let test_fault_burst_stationary_rate () =
  let f =
    Fault.burst ~p_good_to_bad:0.1 ~p_bad_to_good:0.4 ~loss_good:0.0
      ~loss_bad:0.5 ~seed:1
  in
  (* pi_bad = 0.1 / 0.5 = 0.2; rate = 0.2 * 0.5 = 0.1. *)
  Alcotest.(check (float 1e-9)) "stationary rate" 0.1 (Fault.loss_rate f);
  let n = 50_000 in
  let losses = ref 0 in
  for _ = 1 to n do
    if Fault.advance f then incr losses
  done;
  let rate = float_of_int !losses /. float_of_int n in
  check_bool "empirical near stationary" true (abs_float (rate -. 0.1) < 0.02)

let test_fault_validation () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Fault.bernoulli: p must be in [0, 1]") (fun () ->
      ignore (Fault.bernoulli ~p:1.5 ~seed:0))

let test_fault_reset_to_determinism () =
  (* Regression: [reset_to] must re-anchor the process deterministically —
     the same slot always replays the identical loss sequence, whatever
     state (RNG stream, burst good/bad) the process wandered into before
     the reset. The adaptive driver's channel scripts rely on this. *)
  let record f n = List.init n (fun _ -> Fault.advance f) in
  let check_replay name mk =
    let f = mk () in
    ignore (record f 137);
    (* wander into an arbitrary interior state *)
    Fault.reset_to f 137;
    let a = record f 200 in
    Fault.reset_to f 137;
    let b = record f 200 in
    check_bool (name ^ ": same process replays from the same slot") true
      (a = b);
    let g = mk () in
    Fault.reset_to g 137;
    let c = record g 200 in
    check_bool (name ^ ": fresh process agrees") true (a = c)
  in
  check_replay "bernoulli" (fun () -> Fault.bernoulli ~p:0.3 ~seed:11);
  check_replay "burst" (fun () ->
      Fault.burst ~p_good_to_bad:0.2 ~p_bad_to_good:0.3 ~loss_good:0.05
        ~loss_bad:0.6 ~seed:11)

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

let test_client_error_free () =
  let p = toy_ida () in
  (* Tuning in at slot 0, file A needs 5 distinct blocks: occurrences at
     0,2,3,5,7 -> done at slot 7, elapsed 8. *)
  let o = Client.retrieve ~program:p ~file:0 ~needed:5 ~start:0 ~fault:(Fault.none ()) () in
  Alcotest.(check (option int)) "completed at 7" (Some 7) o.Client.completed_at;
  Alcotest.(check (option int)) "elapsed 8" (Some 8) o.Client.elapsed;
  check_int "receptions" 5 o.Client.receptions;
  check_int "losses" 0 o.Client.losses

let test_client_b_from_slot_2 () =
  let p = toy_ida () in
  (* File B occurrences at 1,4,6 (blocks B1,B2,B3). From slot 2: B at 4, 6,
     9 -> elapsed 8. *)
  let o = Client.retrieve ~program:p ~file:1 ~needed:3 ~start:2 ~fault:(Fault.none ()) () in
  Alcotest.(check (option int)) "completed at 9" (Some 9) o.Client.completed_at;
  Alcotest.(check (option int)) "elapsed 8" (Some 8) o.Client.elapsed

let test_client_single_loss_ida_vs_flat () =
  (* Lose the very first A reception. With IDA the replacement is the next
     A block (2 slots later); without IDA block A1 only returns a full
     period later. *)
  let lose_first = Fault.deterministic (fun t -> t = 0) in
  let o_ida =
    Client.retrieve ~program:(toy_ida ()) ~file:0 ~needed:5 ~start:0 ~fault:lose_first ()
  in
  Alcotest.(check (option int)) "ida: done at 8" (Some 8) o_ida.Client.completed_at;
  check_int "one loss" 1 o_ida.Client.losses;
  let lose_first' = Fault.deterministic (fun t -> t = 0) in
  let o_flat =
    Client.retrieve ~program:(toy_flat ()) ~file:0 ~needed:5 ~start:0 ~fault:lose_first' ()
  in
  (* A1 returns at slot 8. *)
  Alcotest.(check (option int)) "flat: done at 8" (Some 8) o_flat.Client.completed_at

let test_client_flat_worst_loss () =
  (* Losing the LAST needed block of the flat program costs a full period:
     A5 at slot 7 lost -> A5 returns at slot 15. *)
  let lose = Fault.deterministic (fun t -> t = 7) in
  let o =
    Client.retrieve ~program:(toy_flat ()) ~file:0 ~needed:5 ~start:0 ~fault:lose ()
  in
  Alcotest.(check (option int)) "done at 15" (Some 15) o.Client.completed_at;
  (* Same loss under IDA: A6 arrives at slot 8. *)
  let lose' = Fault.deterministic (fun t -> t = 7) in
  let o' =
    Client.retrieve ~program:(toy_ida ()) ~file:0 ~needed:5 ~start:0 ~fault:lose' ()
  in
  Alcotest.(check (option int)) "ida done at 8" (Some 8) o'.Client.completed_at

let test_client_max_slots () =
  let all_lost = Fault.deterministic (fun _ -> true) in
  let o =
    Client.retrieve ~max_slots:50 ~program:(toy_ida ()) ~file:0 ~needed:5 ~start:0
      ~fault:all_lost ()
  in
  check_bool "never completes" true (o.Client.completed_at = None);
  check_bool "deadline missed" false (Client.deadline_met o ~deadline:1000)

let test_client_validation () =
  Alcotest.check_raises "needed beyond capacity"
    (Invalid_argument "Client.retrieve: needed exceeds the file's capacity")
    (fun () ->
      ignore
        (Client.retrieve ~program:(toy_flat ()) ~file:0 ~needed:6 ~start:0
           ~fault:(Fault.none ()) ()));
  Alcotest.check_raises "unknown file"
    (Invalid_argument "Client.retrieve: file not in program") (fun () ->
      ignore
        (Client.retrieve ~program:(toy_flat ()) ~file:9 ~needed:1 ~start:0
           ~fault:(Fault.none ()) ()))

let check_client_error = Alcotest.(check (result reject (of_pp Client.pp_error)))

let test_client_retrieve_checked () =
  (* Every raising case has a typed counterpart... *)
  check_client_error "unknown file" (Error Client.Unknown_file)
    (Client.retrieve_checked ~program:(toy_flat ()) ~file:9 ~needed:1 ~start:0
       ~fault:(Fault.none ()) ());
  check_client_error "needed beyond capacity"
    (Error (Client.Needed_exceeds_capacity 5))
    (Client.retrieve_checked ~program:(toy_flat ()) ~file:0 ~needed:6 ~start:0
       ~fault:(Fault.none ()) ());
  check_client_error "negative start" (Error (Client.Bad_request "negative start"))
    (Client.retrieve_checked ~program:(toy_flat ()) ~file:0 ~needed:5 ~start:(-1)
       ~fault:(Fault.none ()) ());
  (* ...and the Ok path is the same simulation as the raising API. *)
  match
    Client.retrieve_checked ~program:(toy_flat ()) ~file:0 ~needed:5 ~start:0
      ~fault:(Fault.none ()) ()
  with
  | Error e -> Alcotest.failf "unexpected error: %a" Client.pp_error e
  | Ok o ->
      let o' =
        Client.retrieve ~program:(toy_flat ()) ~file:0 ~needed:5 ~start:0
          ~fault:(Fault.none ()) ()
      in
      check_bool "checked and raising APIs agree" true (o = o')

let test_client_report_hook () =
  let p = toy_ida () in
  let reports = ref [] in
  let report ~slot ~file ~lost = reports := (slot, file, lost) :: !reports in
  let o =
    Client.retrieve ~report ~program:p ~file:0 ~needed:5 ~start:0
      ~fault:(Fault.deterministic (fun t -> t = 0)) ()
  in
  let reports = List.rev !reports in
  check_bool "retrieval completed" true (o.Client.completed_at <> None);
  (* The toy layout is busy every slot; slot 0's A block is lost, so the
     client watches one extra slot past the error-free 8. *)
  check_int "one report per busy slot watched" 9 (List.length reports);
  List.iteri
    (fun i (slot, file, lost) ->
      check_int "reports are in slot order" i slot;
      check_bool "loss verdict reported" (slot = 0) lost;
      match Program.block_at p slot with
      | Some (f, _) -> check_int "reported file matches the air" f file
      | None -> Alcotest.fail "report on an idle slot")
    reports;
  check_bool "other files' slots reported too" true
    (List.exists (fun (_, f, _) -> f = 1) reports)

(* ------------------------------------------------------------------ *)
(* Adversary                                                           *)
(* ------------------------------------------------------------------ *)

let test_adversary_error_free_matches_lemma () =
  (* Error-free worst-case retrieval of the toy files is one period. *)
  check_int "A error-free" 8
    (Adversary.worst_case_retrieval (toy_ida ()) ~file:0 ~needed:5 ~errors:0);
  check_int "B error-free" 8
    (Adversary.worst_case_retrieval (toy_ida ()) ~file:1 ~needed:3 ~errors:0)

let test_adversary_flat_is_lemma1_tight () =
  (* Figure 7, "Without IDA" column: delay is exactly r * tau = 8r. *)
  let p = toy_flat () in
  List.iter
    (fun r ->
      check_int
        (Printf.sprintf "flat delay r=%d" r)
        (Bounds.lemma1 ~period:8 ~errors:r)
        (Adversary.worst_case_delay p ~file:0 ~needed:5 ~errors:r))
    [ 0; 1; 2; 3; 4; 5 ]

let test_adversary_ida_beats_flat () =
  let ida = toy_ida () and flat = toy_flat () in
  List.iter
    (fun r ->
      let d_ida = Adversary.worst_case_delay ida ~file:0 ~needed:5 ~errors:r in
      let d_flat = Adversary.worst_case_delay flat ~file:0 ~needed:5 ~errors:r in
      check_bool (Printf.sprintf "ida <= flat at r=%d" r) true (d_ida <= d_flat))
    [ 1; 2; 3; 4; 5 ]

let test_adversary_lemma2_bound_within_redundancy () =
  (* Lemma 2: delay <= r * Delta, valid while r <= capacity - needed (AIDA
     provides r spare blocks). File A: Delta = 2, spare = 5. *)
  let ida = toy_ida () in
  List.iter
    (fun r ->
      let d = Adversary.worst_case_delay ida ~file:0 ~needed:5 ~errors:r in
      check_bool
        (Printf.sprintf "A delay %d <= 2r at r=%d" d r)
        true
        (d <= Bounds.lemma2 ~delta:2 ~errors:r))
    [ 0; 1; 2; 3; 4; 5 ];
  (* File B: Delta = 3, spare = 3: bound holds for r <= 3... *)
  List.iter
    (fun r ->
      let d = Adversary.worst_case_delay ida ~file:1 ~needed:3 ~errors:r in
      check_bool
        (Printf.sprintf "B delay %d <= 3r at r=%d" d r)
        true
        (d <= Bounds.lemma2 ~delta:3 ~errors:r))
    [ 0; 1; 2; 3 ];
  (* ... and genuinely breaks beyond the redundancy (r = 4 > spare): the
     client must wait for a repeat. This is the implicit AIDA assumption in
     the lemma. *)
  let d4 = Adversary.worst_case_delay ida ~file:1 ~needed:3 ~errors:4 in
  check_bool "beyond redundancy the bound fails" true
    (d4 > Bounds.lemma2 ~delta:3 ~errors:4)

let test_adversary_dominates_random_clients () =
  (* No stochastic run may ever exceed the adversarial worst case with the
     same number of losses. *)
  let p = toy_ida () in
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 200 do
    let start = Random.State.int rng 16 in
    let seed = Random.State.int rng 10_000 in
    let fault = Fault.bernoulli ~p:0.2 ~seed in
    let o = Client.retrieve ~program:p ~file:0 ~needed:5 ~start ~fault () in
    match (o.Client.elapsed, o.Client.losses) with
    | Some e, losses when losses <= 5 ->
        let wc = Adversary.worst_case_retrieval p ~file:0 ~needed:5 ~errors:losses in
        check_bool "bounded by adversary" true (e <= wc)
    | _ -> ()
  done

let test_adversary_validation () =
  Alcotest.check_raises "capacity too large"
    (Invalid_argument "Adversary: capacity 30 exceeds the supported 20")
    (fun () ->
      let p = Program.of_layout [ (0, 0) ] ~capacities:[ (0, 30) ] in
      ignore (Adversary.worst_case_retrieval p ~file:0 ~needed:1 ~errors:0))

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)
(* ------------------------------------------------------------------ *)

module Transport = Pindisk_sim.Transport
module Ida = Pindisk_ida.Ida

let toy_transport () =
  Transport.create ~program:(toy_ida ())
    [
      (0, 5, Bytes.of_string "intelligent vehicle highway system db");
      (1, 3, Bytes.of_string "awacs feed");
    ]

let test_transport_on_air () =
  let t = toy_transport () in
  (match Transport.on_air t 0 with
  | Some (0, piece) -> check_int "slot 0 carries A piece 0" 0 piece.Ida.index
  | _ -> Alcotest.fail "slot 0 is file A");
  (match Transport.on_air t 8 with
  | Some (0, piece) -> check_int "slot 8 carries A piece 5" 5 piece.Ida.index
  | _ -> Alcotest.fail "slot 8 is file A");
  check_int "m for A" 5 (Transport.source_blocks t 0)

let test_transport_roundtrip_error_free () =
  let t = toy_transport () in
  (match Transport.retrieve t ~file:0 ~start:3 ~fault:(Fault.none ()) () with
  | Some bytes ->
      Alcotest.(check string) "bytes back" "intelligent vehicle highway system db"
        (Bytes.to_string bytes)
  | None -> Alcotest.fail "retrieval must complete");
  match Transport.retrieve t ~file:1 ~start:5 ~fault:(Fault.none ()) () with
  | Some bytes -> Alcotest.(check string) "B back" "awacs feed" (Bytes.to_string bytes)
  | None -> Alcotest.fail "retrieval must complete"

let test_transport_roundtrip_under_loss () =
  let t = toy_transport () in
  (* 20% iid loss: IDA redundancy still reconstructs, bit-exact. *)
  for seed = 0 to 19 do
    match
      Transport.retrieve t ~file:0 ~start:(seed mod 16)
        ~fault:(Fault.bernoulli ~p:0.2 ~seed) ()
    with
    | Some bytes ->
        Alcotest.(check string) "bit-exact under loss"
          "intelligent vehicle highway system db" (Bytes.to_string bytes)
    | None -> Alcotest.fail "20% loss must not exhaust 100 data cycles"
  done

let test_transport_validation () =
  Alcotest.check_raises "missing content"
    (Invalid_argument "Transport.create: no content for file 1") (fun () ->
      ignore
        (Transport.create ~program:(toy_ida ()) [ (0, 5, Bytes.of_string "x") ]));
  Alcotest.check_raises "m beyond capacity"
    (Invalid_argument "Transport.create: need 1 <= m <= capacity") (fun () ->
      ignore
        (Transport.create ~program:(toy_ida ())
           [ (0, 11, Bytes.of_string "x"); (1, 3, Bytes.of_string "y") ]))

let test_transport_report_hook () =
  let run () =
    let t = toy_transport () in
    let count = ref 0 and losses = ref 0 in
    let report ~slot:_ ~file:_ ~lost =
      incr count;
      if lost then incr losses
    in
    match
      Transport.retrieve t ~report ~file:0 ~start:0
        ~fault:(Fault.bernoulli ~p:0.3 ~seed:13) ()
    with
    | Some bytes ->
        Alcotest.(check string) "payload still bit-exact"
          "intelligent vehicle highway system db" (Bytes.to_string bytes);
        (!count, !losses)
    | None -> Alcotest.fail "retrieval must complete"
  in
  let count, losses = run () in
  check_bool "at least m busy slots reported" true (count >= 5);
  check_bool "the lossy channel shows up in the reports" true (losses > 0);
  let count', losses' = run () in
  check_int "report stream deterministic (count)" count count';
  check_int "report stream deterministic (losses)" losses losses'

(* ------------------------------------------------------------------ *)
(* Experiment                                                          *)
(* ------------------------------------------------------------------ *)

let test_experiment_error_free () =
  let s =
    Experiment.run ~program:(toy_ida ()) ~file:0 ~needed:5 ~deadline:8
      ~fault:(fun ~seed:_ -> Fault.none ())
      ~trials:100 ~seed:5 ()
  in
  check_int "all complete" 100 s.Experiment.completed;
  check_int "no misses at deadline 8" 0 s.Experiment.missed_deadline;
  check_bool "mean within [5, 8]" true
    (s.Experiment.mean_latency >= 5.0 && s.Experiment.mean_latency <= 8.0)

let test_experiment_lossy_monotone () =
  (* Higher loss rates cannot improve the miss ratio (statistically; use
     well-separated rates and plenty of trials). *)
  let run p_loss =
    Experiment.run ~program:(toy_ida ()) ~file:0 ~needed:5 ~deadline:10
      ~fault:(fun ~seed -> Fault.bernoulli ~p:p_loss ~seed)
      ~trials:400 ~seed:11 ()
  in
  let low = run 0.05 and high = run 0.5 in
  check_bool "monotone misses" true
    (Experiment.miss_ratio low <= Experiment.miss_ratio high +. 1e-9);
  check_bool "reproducible" true (run 0.05 = low)

let test_experiment_ida_beats_flat_under_loss () =
  let run program =
    Experiment.run ~program ~file:0 ~needed:5 ~deadline:12
      ~fault:(fun ~seed -> Fault.bernoulli ~p:0.15 ~seed)
      ~trials:500 ~seed:23 ()
  in
  let ida = run (toy_ida ()) and flat = run (toy_flat ()) in
  check_bool "ida misses fewer deadlines" true
    (Experiment.miss_ratio ida <= Experiment.miss_ratio flat)

(* ------------------------------------------------------------------ *)
(* Transaction                                                         *)
(* ------------------------------------------------------------------ *)

module Transaction = Pindisk_sim.Transaction

let both_reads =
  [
    { Transaction.file = 0; needed = 5; tolerate = 0 };
    { Transaction.file = 1; needed = 3; tolerate = 0 };
  ]

let test_transaction_concurrent_harvest () =
  (* One pass over the toy program collects BOTH files: from slot 0, A
     finishes at slot 7 and B at slot 6, so the transaction finishes at
     slot 7 -- not the 15 a sequential reader would need. *)
  let p = toy_ida () in
  let o =
    Transaction.retrieve ~program:p ~reads:both_reads ~start:0
      ~fault:(Fault.none ()) ()
  in
  Alcotest.(check (option int)) "done at 7" (Some 7) o.Transaction.completed_at;
  Alcotest.(check (option int)) "elapsed 8" (Some 8) o.Transaction.elapsed

let test_transaction_worst_case_is_max_not_sum () =
  let p = toy_ida () in
  let wc = Transaction.worst_case p ~reads:both_reads in
  let wa = Adversary.worst_case_retrieval p ~file:0 ~needed:5 ~errors:0 in
  let wb = Adversary.worst_case_retrieval p ~file:1 ~needed:3 ~errors:0 in
  check_bool "at least each read's worst case" true (wc >= max wa wb);
  check_bool "well below the sum" true (wc < wa + wb);
  check_bool "guaranteed at its worst case" true
    (Transaction.guaranteed p ~reads:both_reads ~deadline:wc);
  check_bool "not guaranteed below it" false
    (Transaction.guaranteed p ~reads:both_reads ~deadline:(wc - 1))

let test_transaction_worst_case_dominates_simulation () =
  let p = toy_ida () in
  let reads =
    [
      { Transaction.file = 0; needed = 5; tolerate = 2 };
      { Transaction.file = 1; needed = 3; tolerate = 1 };
    ]
  in
  let wc = Transaction.worst_case p ~reads in
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 150 do
    let start = Random.State.int rng 16 in
    let o =
      Transaction.retrieve ~program:p ~reads ~start
        ~fault:(Fault.bernoulli ~p:0.1 ~seed:(Random.State.int rng 99999)) ()
    in
    (* Only runs whose per-file losses stay within the budgets are
       covered by the guarantee; losses are per-channel here so use the
       total as a conservative filter. *)
    match o.Transaction.elapsed with
    | Some e when o.Transaction.losses <= 1 ->
        check_bool "within worst case" true (e <= wc)
    | _ -> ()
  done

let test_transaction_shared_budget () =
  let p = toy_ida () in
  (* Zero shared budget = the fault-free joint worst case. *)
  check_int "shared 0 = per-file 0"
    (Transaction.worst_case p ~reads:both_reads)
    (Transaction.worst_case_shared p ~reads:both_reads ~errors:0);
  (* A shared budget dominates any split of the same total. *)
  let shared = Transaction.worst_case_shared p ~reads:both_reads ~errors:3 in
  List.iter
    (fun (ra, rb) ->
      let split =
        Transaction.worst_case p
          ~reads:
            [
              { Transaction.file = 0; needed = 5; tolerate = ra };
              { Transaction.file = 1; needed = 3; tolerate = rb };
            ]
      in
      check_bool
        (Printf.sprintf "shared >= split (%d,%d)" ra rb)
        true (shared >= split))
    [ (0, 3); (1, 2); (2, 1); (3, 0) ];
  check_bool "shared grows with budget" true
    (Transaction.worst_case_shared p ~reads:both_reads ~errors:1 <= shared)

let test_transaction_validation () =
  let p = toy_ida () in
  Alcotest.check_raises "duplicate files" (Invalid_argument "Transaction: duplicate files")
    (fun () ->
      ignore
        (Transaction.worst_case p
           ~reads:
             [
               { Transaction.file = 0; needed = 1; tolerate = 0 };
               { Transaction.file = 0; needed = 2; tolerate = 0 };
             ]));
  Alcotest.check_raises "empty" (Invalid_argument "Transaction: empty read set")
    (fun () -> ignore (Transaction.worst_case p ~reads:[]))

let test_transaction_starved () =
  let p = toy_ida () in
  let o =
    Transaction.retrieve ~max_slots:30 ~program:p ~reads:both_reads ~start:0
      ~fault:(Fault.deterministic (fun _ -> true)) ()
  in
  check_bool "never completes under total loss" true (o.Transaction.elapsed = None)

(* ------------------------------------------------------------------ *)
(* Workload + Engine                                                   *)
(* ------------------------------------------------------------------ *)

module Workload = Pindisk_sim.Workload
module Engine = Pindisk_sim.Engine
module Stats = Pindisk_util.Stats

let trace_for program =
  Workload.generate ~program ~rate:0.2 ~theta:0.8
    ~needed_of:(fun f -> if f = 0 then 5 else 3)
    ~deadline_of:(fun f -> if f = 0 then 10 else 12)
    ~horizon:2000 ~seed:4

let test_workload_deterministic_and_sorted () =
  let p = toy_ida () in
  let t1 = trace_for p and t2 = trace_for p in
  check_bool "deterministic" true (t1 = t2);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Workload.issued <= b.Workload.issued && sorted rest
    | _ -> true
  in
  check_bool "sorted by issue slot" true (sorted t1);
  check_bool "non-empty" true (List.length t1 > 200);
  List.iter
    (fun r ->
      check_bool "within horizon" true (r.Workload.issued < 2000);
      check_bool "known file" true (List.mem r.Workload.file [ 0; 1 ]))
    t1

let test_workload_rate_scales () =
  let p = toy_ida () in
  let at rate =
    List.length
      (Workload.generate ~program:p ~rate ~theta:0.5
         ~needed_of:(fun _ -> 1)
         ~deadline_of:(fun _ -> 10)
         ~horizon:5000 ~seed:7)
  in
  let low = at 0.05 and high = at 0.4 in
  check_bool "rate scales volume" true (high > 4 * low)

let test_workload_zipf_skew () =
  let p = toy_ida () in
  let trace =
    Workload.generate ~program:p ~rate:0.5 ~theta:1.2
      ~needed_of:(fun _ -> 1)
      ~deadline_of:(fun _ -> 10)
      ~horizon:8000 ~seed:13
  in
  let count f = List.length (List.filter (fun r -> r.Workload.file = f) trace) in
  check_bool "file 0 hotter than file 1" true (count 0 > count 1)

let test_engine_error_free_all_meet () =
  let p = toy_ida () in
  (* Error-free worst cases are 8 slots; deadlines 10/12 are met always. *)
  let r =
    Engine.run ~program:p ~fault:(fun ~seed:_ -> Fault.none ()) ~seed:0
      (trace_for p)
  in
  check_int "no misses" 0 r.Engine.missed;
  check_int "all completed" r.Engine.requests r.Engine.completed;
  check_bool "latency bounded by worst case" true
    (Stats.max_value r.Engine.latency <= 8.0);
  check_int "two files tracked" 2 (List.length r.Engine.per_file)

let test_engine_per_file_consistency () =
  let p = toy_ida () in
  let r =
    Engine.run ~program:p
      ~fault:(fun ~seed -> Fault.bernoulli ~p:0.2 ~seed)
      ~seed:5 (trace_for p)
  in
  let sum_req =
    List.fold_left
      (fun acc (f : Engine.file_stats) -> acc + f.Engine.requests)
      0 r.Engine.per_file
  in
  let sum_miss =
    List.fold_left
      (fun acc (f : Engine.file_stats) -> acc + f.Engine.missed)
      0 r.Engine.per_file
  in
  check_int "per-file requests sum" r.Engine.requests sum_req;
  check_int "per-file misses sum" r.Engine.missed sum_miss;
  check_bool "losses happened" true (r.Engine.losses > 0)

let test_engine_loss_monotone () =
  let p = toy_ida () in
  let miss loss =
    Engine.miss_ratio
      (Engine.run ~program:p
         ~fault:(fun ~seed -> Fault.bernoulli ~p:loss ~seed)
         ~seed:5 (trace_for p))
  in
  check_bool "misses grow with loss" true (miss 0.05 <= miss 0.4 +. 1e-9)

let test_engine_file_miss_ratio () =
  let p = toy_ida () in
  let r =
    Engine.run ~program:p
      ~fault:(fun ~seed -> Fault.bernoulli ~p:0.35 ~seed)
      ~seed:9 (trace_for p)
  in
  List.iter
    (fun (f : Engine.file_stats) ->
      let ratio = Engine.file_miss_ratio f in
      Alcotest.(check (float 1e-9)) "ratio is missed / requests"
        (if f.Engine.requests = 0 then 0.0
         else float_of_int f.Engine.missed /. float_of_int f.Engine.requests)
        ratio;
      check_bool "ratio in [0, 1]" true (0.0 <= ratio && ratio <= 1.0))
    r.Engine.per_file

let test_engine_pp_result_lists_per_file_ratios () =
  let p = toy_ida () in
  let r =
    Engine.run ~program:p
      ~fault:(fun ~seed -> Fault.bernoulli ~p:0.35 ~seed)
      ~seed:9 (trace_for p)
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  let rendered = Format.asprintf "%a" Engine.pp_result r in
  List.iter
    (fun (f : Engine.file_stats) ->
      let line = Format.asprintf "%a" Engine.pp_file_stats f in
      check_bool "file line carries the percentage" true
        (String.contains line '%');
      check_bool "summary embeds every per-file line" true
        (contains rendered line))
    r.Engine.per_file

(* ------------------------------------------------------------------ *)
(* Drive: the online-dispatch population engine                        *)
(* ------------------------------------------------------------------ *)

module Drive = Pindisk_sim.Drive
module Pw = Pindisk_pinwheel

let stats_eq label (a : Stats.t) (b : Stats.t) =
  check_int (label ^ " count") (Stats.count a) (Stats.count b);
  if Stats.count a > 0 then begin
    Alcotest.(check (float 0.0)) (label ^ " total") (Stats.total a) (Stats.total b);
    Alcotest.(check (float 0.0)) (label ^ " min") (Stats.min_value a) (Stats.min_value b);
    Alcotest.(check (float 0.0)) (label ^ " max") (Stats.max_value a) (Stats.max_value b);
    Alcotest.(check (float 0.0)) (label ^ " median") (Stats.median a) (Stats.median b)
  end

let result_eq (a : Engine.result) (b : Engine.result) =
  check_int "requests" a.Engine.requests b.Engine.requests;
  check_int "completed" a.Engine.completed b.Engine.completed;
  check_int "missed" a.Engine.missed b.Engine.missed;
  check_int "losses" a.Engine.losses b.Engine.losses;
  stats_eq "latency" a.Engine.latency b.Engine.latency;
  check_int "per-file count" (List.length a.Engine.per_file)
    (List.length b.Engine.per_file);
  List.iter2
    (fun (fa : Engine.file_stats) (fb : Engine.file_stats) ->
      check_int "file" fa.Engine.file fb.Engine.file;
      check_int "file requests" fa.Engine.requests fb.Engine.requests;
      check_int "file missed" fa.Engine.missed fb.Engine.missed;
      stats_eq "file latency" fa.Engine.latency fb.Engine.latency)
    a.Engine.per_file b.Engine.per_file

(* A dyadic 4-file broadcast system (density 1/2) whose plan and program
   are two views of the same construction. *)
let drive_plan_and_program () =
  let sys =
    [ Pw.Task.unit ~id:0 ~b:4; Pw.Task.unit ~id:1 ~b:8;
      Pw.Task.unit ~id:2 ~b:16; Pw.Task.unit ~id:3 ~b:16 ]
  in
  let plan =
    match Pw.Scheduler.plan sys with
    | Some p -> p
    | None -> Alcotest.fail "dyadic density-1/2 system schedules"
  in
  let capacities = [ (0, 4); (1, 2); (2, 2); (3, 1) ] in
  (plan, Program.make ~schedule:(Pw.Plan.to_schedule plan) ~capacities,
   capacities)

let drive_trace () =
  List.concat_map
    (fun k ->
      let file = k mod 4 in
      [
        { Workload.issued = 3 * k; file; needed = (if file = 0 then 2 else 1);
          deadline = 60 };
        (* A hopeless deadline, to exercise the missed path in both. *)
        { Workload.issued = (3 * k) + 1; file; needed = 1; deadline = 0 };
      ])
    (List.init 12 Fun.id)

let test_drive_equals_engine_error_free () =
  let plan, program, capacities = drive_plan_and_program () in
  let fault ~seed:_ = Fault.none () in
  let trace = drive_trace () in
  result_eq
    (Engine.run ~program ~fault ~seed:3 trace)
    (Drive.run ~plan ~capacities ~fault ~seed:3 trace)

let test_drive_equals_engine_under_loss () =
  let plan, program, capacities = drive_plan_and_program () in
  let fault ~seed = Fault.bernoulli ~p:0.25 ~seed in
  let trace = drive_trace () in
  let r = Engine.run ~program ~fault ~seed:17 trace in
  result_eq r (Drive.run ~plan ~capacities ~fault ~seed:17 trace);
  check_bool "losses happened" true (r.Engine.losses > 0);
  (* Same equivalence at a different max_slots cap. *)
  result_eq
    (Engine.run ~max_slots:24 ~program ~fault ~seed:17 trace)
    (Drive.run ~max_slots:24 ~plan ~capacities ~fault ~seed:17 trace)

let test_drive_occurrences_per_period () =
  let plan, program, _ = drive_plan_and_program () in
  let occ = Drive.occurrences_per_period plan in
  List.iter
    (fun f ->
      check_int
        (Printf.sprintf "file %d occurrences" f)
        (Program.occurrences_per_period program f)
        (Option.value (Hashtbl.find_opt occ f) ~default:0))
    (Program.files program)

let test_drive_validation () =
  let plan, _, capacities = drive_plan_and_program () in
  let run trace =
    ignore (Drive.run ~plan ~capacities ~fault:(fun ~seed:_ -> Fault.none ())
              ~seed:0 trace)
  in
  Alcotest.check_raises "unknown file"
    (Invalid_argument "Drive.run: file not in plan capacities") (fun () ->
      run [ { Workload.issued = 0; file = 9; needed = 1; deadline = 5 } ]);
  Alcotest.check_raises "needed beyond capacity"
    (Invalid_argument "Drive.run: needed exceeds the file's capacity")
    (fun () ->
      run [ { Workload.issued = 0; file = 3; needed = 2; deadline = 5 } ])

(* ------------------------------------------------------------------ *)
(* Cohort: weighted-class population engine                            *)
(* ------------------------------------------------------------------ *)

module Cohort = Pindisk_sim.Cohort

(* Three program shapes for the equivalence matrix: the dyadic pinwheel
   plan plus the two toy layouts replayed through explicit plans. *)
let cohort_systems () =
  let dyadic =
    let plan, _, capacities = drive_plan_and_program () in
    ("dyadic", plan, capacities,
     List.concat_map
       (fun k ->
         let file = k mod 4 in
         [
           { Workload.issued = (3 * k) + (k mod 2); file;
             needed = (if file = 0 then 2 else 1); deadline = 40 };
           { Workload.issued = (3 * k) + 1; file; needed = 1; deadline = 0 };
         ])
       (List.init 12 Fun.id))
  in
  let of_program name program needed_of =
    let plan = Pw.Plan.explicit (Program.schedule program) in
    let capacities =
      List.map (fun f -> (f, Program.capacity program f)) (Program.files program)
    in
    (name, plan, capacities,
     List.concat_map
       (fun k ->
         let file = k mod 2 in
         [
           { Workload.issued = 2 * k; file; needed = needed_of file;
             deadline = 30 };
           { Workload.issued = (2 * k) + 1; file; needed = 1; deadline = 0 };
         ])
       (List.init 10 Fun.id))
  in
  [
    dyadic;
    of_program "flat" (toy_flat ()) (fun file -> if file = 0 then 3 else 2);
    of_program "ida" (toy_ida ()) (fun file -> if file = 0 then 5 else 3);
  ]

let cohort_fault_models =
  [
    ("none", fun ~seed:_ -> Fault.none ());
    ("bernoulli", fun ~seed -> Fault.bernoulli ~p:0.25 ~seed);
    ("burst",
     fun ~seed ->
       Fault.burst ~p_good_to_bad:0.15 ~p_bad_to_good:0.35 ~loss_good:0.02
         ~loss_bad:0.6 ~seed);
    ("deterministic", fun ~seed:_ -> Fault.deterministic (fun t -> t mod 7 = 2));
  ]

let test_cohort_run_equals_drive () =
  (* The tentpole pin: sampled-fault Cohort.run reproduces Drive.run's
     Engine.result exactly — programs x fault models x seeds. *)
  List.iter
    (fun (sys, plan, capacities, trace) ->
      List.iter
        (fun (model, fault) ->
          List.iter
            (fun seed ->
              ignore (sys, model);
              result_eq
                (Drive.run ~plan ~capacities ~fault ~seed trace)
                (Cohort.run ~plan ~capacities ~fault ~seed trace))
            [ 3; 17; 91 ])
        cohort_fault_models)
    (cohort_systems ())

let test_cohort_run_equals_drive_max_slots () =
  let _, plan, capacities, trace = List.hd (cohort_systems ()) in
  let fault ~seed = Fault.bernoulli ~p:0.3 ~seed in
  List.iter
    (fun max_slots ->
      result_eq
        (Drive.run ~max_slots ~plan ~capacities ~fault ~seed:5 trace)
        (Cohort.run ~max_slots ~plan ~capacities ~fault ~seed:5 trace))
    [ 1; 16; 24; 128 ]

let test_cohort_prep_reuse () =
  let _, plan, capacities, trace = List.hd (cohort_systems ()) in
  let fault ~seed = Fault.bernoulli ~p:0.25 ~seed in
  let prep = Drive.prepare plan in
  result_eq
    (Drive.run ~plan ~capacities ~fault ~seed:7 trace)
    (Drive.run ~prep ~plan ~capacities ~fault ~seed:7 trace);
  result_eq
    (Cohort.run ~plan ~capacities ~fault ~seed:7 trace)
    (Cohort.run ~prep ~plan ~capacities ~fault ~seed:7 trace)

let test_cohort_classes_of_trace () =
  let _, plan, _, trace = List.hd (cohort_systems ()) in
  let period = Pw.Plan.period plan in
  let classes = Cohort.classes_of_trace ~period trace in
  check_int "weights sum to trace length" (List.length trace)
    (List.fold_left (fun acc (c : Cohort.cls) -> acc + c.Cohort.weight) 0 classes);
  let keys = List.map (fun (c : Cohort.cls) -> c.Cohort.key) classes in
  check_bool "canonical order" true (keys = List.sort compare keys);
  List.iter
    (fun (c : Cohort.cls) ->
      check_bool "phase within period" true
        (c.Cohort.key.Cohort.phase >= 0 && c.Cohort.key.Cohort.phase < period))
    classes;
  Alcotest.check_raises "bad period"
    (Invalid_argument "Cohort.classes_of_trace: period must be >= 1") (fun () ->
      ignore (Cohort.classes_of_trace ~period:0 trace))

let test_cohort_population_no_loss_equals_drive () =
  (* With no losses every member of a class completes at the same slot
     distance, so the analytic fold must equal a per-client Drive run on
     a trace that realizes the same classes (members spread over period
     echoes of the same phase). *)
  let _, plan, capacities, _ = List.hd (cohort_systems ()) in
  let period = Pw.Plan.period plan in
  let trace =
    List.concat_map
      (fun m ->
        [
          { Workload.issued = 2 + (m * period); file = 0; needed = 2;
            deadline = 12 };
          { Workload.issued = 5 + (m * period); file = 1; needed = 2;
            deadline = 3 };
        ])
      (List.init 5 Fun.id)
  in
  let classes = Cohort.classes_of_trace ~period trace in
  result_eq
    (Drive.run ~plan ~capacities ~fault:(fun ~seed:_ -> Fault.none ()) ~seed:0
       trace)
    (Cohort.run_population ~plan ~capacities ~model:Cohort.No_loss ~seed:0
       classes)

let test_cohort_population_mass_conservation () =
  let _, plan, capacities, trace = List.hd (cohort_systems ()) in
  let period = Pw.Plan.period plan in
  let classes =
    List.map
      (fun (c : Cohort.cls) -> { c with Cohort.weight = c.Cohort.weight * 1000 })
      (Cohort.classes_of_trace ~period trace)
  in
  let population =
    List.fold_left (fun acc (c : Cohort.cls) -> acc + c.Cohort.weight) 0 classes
  in
  let r =
    Cohort.run_population ~plan ~capacities
      ~model:(Cohort.Bernoulli { p = 0.3 })
      ~seed:0 classes
  in
  check_int "every member retired" population r.Engine.requests;
  check_int "completed = latency count" r.Engine.completed
    (Stats.count r.Engine.latency);
  check_bool "missed within population" true
    (r.Engine.missed >= 0 && r.Engine.missed <= population);
  check_int "per-file requests sum to population" population
    (List.fold_left
       (fun acc (f : Engine.file_stats) -> acc + f.Engine.requests)
       0 r.Engine.per_file)

let test_cohort_population_analytic_close_to_sampled () =
  let _, plan, capacities, trace = List.hd (cohort_systems ()) in
  let period = Pw.Plan.period plan in
  let classes =
    List.map
      (fun (c : Cohort.cls) -> { c with Cohort.weight = c.Cohort.weight * 500 })
      (Cohort.classes_of_trace ~period trace)
  in
  let model = Cohort.Bernoulli { p = 0.3 } in
  let analytic =
    Cohort.run_population ~plan ~capacities ~model ~seed:11 classes
  in
  let sampled =
    Cohort.run_population ~sampled:true ~plan ~capacities ~model ~seed:11
      classes
  in
  check_int "same population" analytic.Engine.requests sampled.Engine.requests;
  check_bool "miss ratios agree" true
    (abs_float (Engine.miss_ratio analytic -. Engine.miss_ratio sampled) < 0.03);
  check_bool "mean latencies agree" true
    (abs_float
       (Stats.mean analytic.Engine.latency -. Stats.mean sampled.Engine.latency)
     /. Stats.mean sampled.Engine.latency
    < 0.1);
  check_bool "losses agree" true
    (abs_float
       (float_of_int analytic.Engine.losses
       -. float_of_int sampled.Engine.losses)
     /. float_of_int (max 1 sampled.Engine.losses)
    < 0.1)

let test_cohort_population_validation () =
  let _, plan, capacities, _ = List.hd (cohort_systems ()) in
  let run classes =
    ignore
      (Cohort.run_population ~plan ~capacities ~model:Cohort.No_loss ~seed:0
         classes)
  in
  let cls ?(file = 0) ?(phase = 0) ?(needed = 1) ?(deadline = 5) weight =
    { Cohort.key = { Cohort.file; phase; needed; deadline }; weight }
  in
  Alcotest.check_raises "phase out of range"
    (Invalid_argument "Cohort.run_population: phase out of [0, period)")
    (fun () -> run [ cls ~phase:(-1) 5 ]);
  Alcotest.check_raises "needed beyond capacity"
    (Invalid_argument "Cohort.run_population: needed exceeds the file's capacity")
    (fun () -> run [ cls ~file:3 ~needed:2 5 ]);
  Alcotest.check_raises "unknown file"
    (Invalid_argument "Cohort.run_population: file not in plan capacities")
    (fun () -> run [ cls ~file:9 5 ]);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Cohort.run_population: negative class weight")
    (fun () -> run [ cls (-1) ])

(* Results compared structurally (bool, for qcheck properties). *)
let result_equal_bool (a : Engine.result) (b : Engine.result) =
  let stats_equal x y =
    Stats.count x = Stats.count y
    && (Stats.count x = 0
       || Stats.total x = Stats.total y
          && Stats.min_value x = Stats.min_value y
          && Stats.max_value x = Stats.max_value y)
  in
  a.Engine.requests = b.Engine.requests
  && a.Engine.completed = b.Engine.completed
  && a.Engine.missed = b.Engine.missed
  && a.Engine.losses = b.Engine.losses
  && stats_equal a.Engine.latency b.Engine.latency
  && List.length a.Engine.per_file = List.length b.Engine.per_file
  && List.for_all2
       (fun (fa : Engine.file_stats) (fb : Engine.file_stats) ->
         fa.Engine.file = fb.Engine.file
         && fa.Engine.requests = fb.Engine.requests
         && fa.Engine.missed = fb.Engine.missed
         && stats_equal fa.Engine.latency fb.Engine.latency)
       a.Engine.per_file b.Engine.per_file

(* qcheck: permuting a trace never changes its class partition, and
   permuting/splitting the class list never changes the population
   result (member fault seeds are content-derived, not index-derived). *)
let prop_cohort_permutation_invariant =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30)
           (quad (int_range 0 3) (int_range 0 40) (int_range 1 2)
              (int_range 0 20)))
        (int_range 0 1000))
  in
  QCheck2.Test.make ~name:"cohort result is permutation-invariant" ~count:40
    gen
    (fun (raw, salt) ->
      let _, plan, capacities, _ = List.hd (cohort_systems ()) in
      let period = Pw.Plan.period plan in
      let trace =
        List.map
          (fun (file, issued, needed, deadline) ->
            (* file 3 has capacity 1 in the dyadic system. *)
            let needed = if file = 3 then 1 else needed in
            { Workload.issued; file; needed; deadline })
          raw
      in
      (* A deterministic pseudo-random permutation keyed on the salt. *)
      let permuted =
        List.mapi (fun i r -> (Pindisk_util.Intmath.mix64 (salt + i), r)) trace
        |> List.sort compare |> List.map snd
      in
      let classes = Cohort.classes_of_trace ~period trace in
      let classes' = Cohort.classes_of_trace ~period permuted in
      let model =
        Cohort.Burst
          { p_good_to_bad = 0.2; p_bad_to_good = 0.4; loss_good = 0.05;
            loss_bad = 0.5 }
      in
      let run cs =
        Cohort.run_population ~max_slots:64 ~plan ~capacities ~model ~seed:9 cs
      in
      classes = classes'
      && result_equal_bool (run classes) (run (List.rev classes))
      && result_equal_bool (run classes) (run classes'))

(* ------------------------------------------------------------------ *)
(* Workload.ycsb                                                       *)
(* ------------------------------------------------------------------ *)

let ycsb_program () =
  (* Four files, id order = popularity order. *)
  Program.flat [ (0, 2); (1, 2); (2, 2); (3, 2) ]

let ycsb ?(rate = 0.8) ?(popularity = Workload.Zipfian { theta = 1.2 })
    ?(arrivals = Workload.Steady) ?(horizon = 4000) ?(seed = 42) () =
  Workload.ycsb ~program:(ycsb_program ()) ~rate ~popularity ~arrivals
    ~needed_of:(fun _ -> 1)
    ~deadline_of:(fun _ -> 16)
    ~horizon ~seed

let file_counts trace =
  let counts = Array.make 4 0 in
  List.iter
    (fun (r : Workload.request) ->
      counts.(r.Workload.file) <- counts.(r.Workload.file) + 1)
    trace;
  counts

let test_ycsb_deterministic () =
  let a = ycsb () and b = ycsb () in
  check_bool "same seed, identical trace" true (a = b);
  check_bool "different seed, different trace" true (a <> ycsb ~seed:43 ());
  check_bool "sorted by issue slot" true
    (List.for_all2
       (fun (x : Workload.request) (y : Workload.request) ->
         x.Workload.issued <= y.Workload.issued)
       (List.filteri (fun i _ -> i < List.length a - 1) a)
       (List.tl a));
  List.iter
    (fun (r : Workload.request) ->
      check_bool "slot within horizon" true
        (r.Workload.issued >= 0 && r.Workload.issued < 4000))
    a

let test_ycsb_zipfian_skew () =
  (* Chi-squared-style pin: empirical file shares must track the zipf
     weights (theta 1.2 over 4 files) within a few points. *)
  let trace = ycsb ~horizon:8000 () in
  let counts = file_counts trace in
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  let expected = Pindisk_sim.Cache.zipf_weights ~n:4 ~theta:1.2 in
  let chi2 = ref 0.0 in
  Array.iteri
    (fun i c ->
      let e = expected.(i) *. total in
      let d = float_of_int c -. e in
      chi2 := !chi2 +. (d *. d /. e))
    counts;
  (* 3 degrees of freedom: chi2 < 16.27 is the 99.9th percentile. *)
  check_bool
    (Printf.sprintf "chi2 %.2f within 99.9%% band" !chi2)
    true (!chi2 < 16.27);
  check_bool "skew is visible" true (counts.(0) > 2 * counts.(3))

let test_ycsb_hotspot () =
  let trace =
    ycsb ~popularity:(Workload.Hotspot { hot_fraction = 0.25; hot_weight = 0.8 })
      ~horizon:8000 ()
  in
  let counts = file_counts trace in
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  let hot_share = float_of_int counts.(0) /. total in
  check_bool
    (Printf.sprintf "hot file holds ~80%% (got %.3f)" hot_share)
    true
    (abs_float (hot_share -. 0.8) < 0.04);
  (* The three cold files split the rest roughly evenly. *)
  List.iter
    (fun i ->
      let share = float_of_int counts.(i) /. total in
      check_bool
        (Printf.sprintf "cold file %d near 1/15 (got %.3f)" i share)
        true
        (abs_float (share -. (0.2 /. 3.0)) < 0.03))
    [ 1; 2; 3 ]

let test_ycsb_shifting_rotates () =
  let trace =
    ycsb ~popularity:(Workload.Shifting { theta = 1.5; every = 1000 })
      ~horizon:2000 ()
  in
  let window lo hi =
    let counts = Array.make 4 0 in
    List.iter
      (fun (r : Workload.request) ->
        if r.Workload.issued >= lo && r.Workload.issued < hi then
          counts.(r.Workload.file) <- counts.(r.Workload.file) + 1)
      trace;
    counts
  in
  let argmax a =
    let best = ref 0 in
    Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
    !best
  in
  check_int "first window favors file 0" 0 (argmax (window 0 1000));
  check_int "second window favors file 1" 1 (argmax (window 1000 2000))

let test_ycsb_diurnal_wave () =
  let trace =
    ycsb ~arrivals:(Workload.Diurnal { period = 400; trough = 0.05 })
      ~horizon:8000 ()
  in
  (* sin peaks at phase 100, bottoms at phase 300 (period 400). *)
  let in_band center r =
    let phase = r.Workload.issued mod 400 in
    abs (phase - center) <= 50
  in
  let peak = List.length (List.filter (in_band 100) trace) in
  let trough = List.length (List.filter (in_band 300) trace) in
  check_bool
    (Printf.sprintf "peak band %d >> trough band %d" peak trough)
    true
    (peak > 4 * trough)

let test_ycsb_flash_crowd () =
  let trace =
    ycsb ~arrivals:(Workload.Flash { at = 2000; magnitude = 6.0; width = 200 })
      ~horizon:4000 ()
  in
  let count lo hi =
    List.length
      (List.filter
         (fun (r : Workload.request) ->
           r.Workload.issued >= lo && r.Workload.issued < hi)
         trace)
  in
  let spike = count 1900 2100 and baseline = count 900 1100 in
  check_bool
    (Printf.sprintf "flash window %d >> baseline %d" spike baseline)
    true
    (spike > 2 * baseline)

let test_ycsb_validation () =
  let run ?(rate = 1.0) ?(popularity = Workload.Zipfian { theta = 0.5 })
      ?(arrivals = Workload.Steady) ?(horizon = 10) () =
    ignore (ycsb ~rate ~popularity ~arrivals ~horizon ())
  in
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  raises "Workload.ycsb: rate must be positive" (fun () -> run ~rate:0.0 ());
  raises "Workload.ycsb: horizon must be >= 1" (fun () -> run ~horizon:0 ());
  raises "Workload.ycsb: negative theta" (fun () ->
      run ~popularity:(Workload.Zipfian { theta = -1.0 }) ());
  raises "Workload.ycsb: hot_fraction must be in (0, 1]" (fun () ->
      run ~popularity:(Workload.Hotspot { hot_fraction = 0.0; hot_weight = 0.5 }) ());
  raises "Workload.ycsb: hot_weight must be in [0, 1]" (fun () ->
      run ~popularity:(Workload.Hotspot { hot_fraction = 0.5; hot_weight = 1.5 }) ());
  raises "Workload.ycsb: every must be >= 1" (fun () ->
      run ~popularity:(Workload.Shifting { theta = 0.5; every = 0 }) ());
  raises "Workload.ycsb: period must be >= 1" (fun () ->
      run ~arrivals:(Workload.Diurnal { period = 0; trough = 0.5 }) ());
  raises "Workload.ycsb: trough must be in [0, 1]" (fun () ->
      run ~arrivals:(Workload.Diurnal { period = 10; trough = 1.5 }) ());
  raises "Workload.ycsb: magnitude must be >= 1" (fun () ->
      run ~arrivals:(Workload.Flash { at = 5; magnitude = 0.5; width = 2 }) ());
  raises "Workload.ycsb: width must be >= 1" (fun () ->
      run ~arrivals:(Workload.Flash { at = 5; magnitude = 2.0; width = 0 }) ());
  raises "Workload.ycsb: flash slot must be >= 0" (fun () ->
      run ~arrivals:(Workload.Flash { at = -1; magnitude = 2.0; width = 2 }) ())

(* ------------------------------------------------------------------ *)
(* Transport streaming                                                 *)
(* ------------------------------------------------------------------ *)

let streamed_transport () =
  let sys = [ Pw.Task.unit ~id:0 ~b:2; Pw.Task.unit ~id:1 ~b:4 ] in
  let plan =
    match Pw.Scheduler.plan sys with
    | Some p -> p
    | None -> Alcotest.fail "density 3/4 system schedules"
  in
  let program =
    Program.make ~schedule:(Pw.Plan.to_schedule plan)
      ~capacities:[ (0, 3); (1, 2) ]
  in
  let t =
    Transport.create ~program
      [ (0, 2, Bytes.of_string "the hot file payload");
        (1, 1, Bytes.of_string "cold") ]
  in
  (t, plan)

let test_streamer_matches_on_air () =
  let t, plan = streamed_transport () in
  let s = Transport.streamer t plan in
  let dc = Program.data_cycle (Transport.program t) in
  for slot = 0 to (2 * dc) - 1 do
    check_int "position" slot (Transport.streamer_slot s);
    let eager = Transport.on_air t slot and streamed = Transport.stream_next s in
    check_bool
      (Printf.sprintf "slot %d agrees" slot)
      true (eager = streamed)
  done

let test_retrieve_streamed_roundtrip () =
  let t, plan = streamed_transport () in
  let s = Transport.streamer t plan in
  (* Advance into the cycle first: tuning in mid-stream must still work. *)
  for _ = 1 to 5 do ignore (Transport.stream_next s) done;
  (match Transport.retrieve_streamed s ~file:0 ~fault:(Fault.none ()) () with
  | Some bytes ->
      Alcotest.(check string) "hot file reconstructs" "the hot file payload"
        (Bytes.to_string bytes)
  | None -> Alcotest.fail "error-free streamed retrieval completes");
  match Transport.retrieve_streamed s ~file:1
          ~fault:(Fault.deterministic (fun t -> t mod 5 = 0)) ()
  with
  | Some bytes ->
      Alcotest.(check string) "cold file survives losses" "cold"
        (Bytes.to_string bytes)
  | None -> Alcotest.fail "streamed retrieval under loss completes"

(* ------------------------------------------------------------------ *)
(* Typed errors and the resilient retrieve path                        *)
(* ------------------------------------------------------------------ *)

(* The Gilbert–Elliott stationary distribution in closed form:
   pi_bad = p_gb / (p_gb + p_bg), rate = (1 - pi_bad)·loss_good +
   pi_bad·loss_bad. [Fault.loss_rate] must implement exactly this, and
   the empirical loss over 10^5 slots must converge to it for any
   parameterization. *)
let prop_burst_loss_rate_converges =
  QCheck2.Test.make
    ~name:"burst loss_rate matches the stationary closed form empirically"
    ~count:25
    QCheck2.Gen.(
      quad (int_range 5 50) (int_range 5 50) (int_range 20 100)
        (int_bound 1_000_000))
    (fun (gb, bg, lb, seed) ->
      let p_good_to_bad = float_of_int gb /. 100.0 in
      let p_bad_to_good = float_of_int bg /. 100.0 in
      let loss_bad = float_of_int lb /. 100.0 in
      let f =
        Fault.burst ~p_good_to_bad ~p_bad_to_good ~loss_good:0.0 ~loss_bad
          ~seed
      in
      let pi_bad = p_good_to_bad /. (p_good_to_bad +. p_bad_to_good) in
      let expected = pi_bad *. loss_bad in
      if abs_float (Fault.loss_rate f -. expected) > 1e-9 then false
      else begin
        let n = 100_000 in
        let losses = ref 0 in
        for _ = 1 to n do
          if Fault.advance f then incr losses
        done;
        let empirical = float_of_int !losses /. float_of_int n in
        abs_float (empirical -. expected) < 0.03
      end)

let test_transport_unknown_file_typed () =
  let t = toy_transport () in
  Alcotest.check_raises "source_blocks names the file"
    (Invalid_argument "Transport.source_blocks: unknown file 9") (fun () ->
      ignore (Transport.source_blocks t 9));
  check_bool "find_source_blocks known" true
    (Transport.find_source_blocks t 0 = Some 5);
  check_bool "find_source_blocks unknown" true
    (Transport.find_source_blocks t 9 = None);
  (match
     Transport.retrieve_result t ~file:9 ~start:0 ~fault:(Fault.none ()) ()
   with
  | Error (Transport.Unknown_file 9) -> ()
  | _ -> Alcotest.fail "expected Unknown_file 9");
  Alcotest.check_raises "legacy retrieve still raises"
    (Invalid_argument "Transport.retrieve: unknown file") (fun () ->
      ignore (Transport.retrieve t ~file:9 ~start:0 ~fault:(Fault.none ()) ()))

let test_retrieve_result_typed () =
  let t = toy_transport () in
  (match
     Transport.retrieve_result t ~file:0 ~start:3 ~fault:(Fault.none ()) ()
   with
  | Ok bytes ->
      Alcotest.(check string) "bit-exact"
        "intelligent vehicle highway system db" (Bytes.to_string bytes)
  | Error e -> Alcotest.failf "unexpected error: %a" Transport.pp_error e);
  (* Lose every slot: a 10-slot budget times out with nothing collected,
     and the error carries the exact accounting. *)
  let lose_all = Fault.deterministic (fun _ -> true) in
  match
    Transport.retrieve_result ~max_slots:10 t ~file:0 ~start:0 ~fault:lose_all
      ()
  with
  | Error (Transport.Timeout { slots = 10; collected = 0; needed = 5 }) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Transport.pp_error e
  | Ok _ -> Alcotest.fail "cannot succeed under total loss"

let test_retrieve_resilient_retries_across_cycles () =
  let t = toy_transport () in
  let dc = Program.data_cycle (Transport.program t) in
  (* Blackout for the whole first attempt's budget: attempt 1 times out,
     the client backs off one period and re-tunes in error-free. *)
  let blackout = Fault.deterministic (fun slot -> slot < dc) in
  (match Transport.retrieve_resilient t ~file:0 ~start:0 ~fault:blackout () with
  | Ok bytes ->
      Alcotest.(check string) "bit-exact after retry"
        "intelligent vehicle highway system db" (Bytes.to_string bytes)
  | Error e ->
      Alcotest.failf "resilient retrieval failed: %a" Transport.pp_error e);
  (* Pieces collected before a timeout survive the re-tune-in: a budget
     too small for any single attempt still completes across attempts. *)
  (match
     Transport.retrieve_resilient ~max_slots:5 t ~file:0 ~start:0
       ~fault:(Fault.none ()) ()
   with
  | Ok bytes ->
      Alcotest.(check string) "monotone progress across attempts"
        "intelligent vehicle highway system db" (Bytes.to_string bytes)
  | Error e ->
      Alcotest.failf "cross-attempt accumulation failed: %a" Transport.pp_error
        e);
  (* Total loss exhausts every attempt and reports the final timeout. *)
  match
    Transport.retrieve_resilient ~attempts:3 t ~file:0 ~start:0
      ~fault:(Fault.deterministic (fun _ -> true)) ()
  with
  | Error (Transport.Timeout _) -> ()
  | _ -> Alcotest.fail "total loss must exhaust attempts"

let test_retrieve_resilient_records_retries () =
  let module Obs = Pindisk_obs in
  Obs.Control.with_enabled true (fun () ->
      Obs.Registry.reset ();
      Obs.Trace.reset ();
      let t = toy_transport () in
      let dc = Program.data_cycle (Transport.program t) in
      let blackout = Fault.deterministic (fun slot -> slot < dc) in
      (match
         Transport.retrieve_resilient t ~file:0 ~start:0 ~fault:blackout ()
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "failed: %a" Transport.pp_error e);
      check_int "one retry counted" 1
        (List.assoc "sim.transport.retries" (Obs.Registry.counters ()));
      check_bool "retry span traced" true
        (List.exists
           (fun e ->
             match e.Obs.Trace.span with
             | Obs.Trace.Retry { file = 0; attempt = 1; _ } -> true
             | _ -> false)
           (Obs.Trace.events ())))

let test_streamer_validate () =
  let t, plan = streamed_transport () in
  (* The program's own plan validates, and the streamer then airs it. *)
  let s = Transport.streamer ~validate:true t plan in
  check_bool "validated streamer airs slot 0" true
    (Transport.stream_next s = Transport.on_air t 0);
  (* A plan whose period is no multiple of the program's is rejected. *)
  let period = Program.period (Transport.program t) in
  let odd = Pw.Plan.explicit (Pw.Schedule.make (Array.make (period + 1) 0)) in
  (match Transport.streamer ~validate:true t odd with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "period mismatch must be rejected");
  (* A right-period plan airing the wrong tasks fails fast, before any
     slot goes out. *)
  let sched = Program.schedule (Transport.program t) in
  let wrong =
    Pw.Plan.explicit (Pw.Schedule.rotate sched 1)
  in
  match Transport.streamer ~validate:true t wrong with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched plan must be rejected"

let () =
  Alcotest.run "sim"
    [
      ( "fault",
        [
          Alcotest.test_case "none" `Quick test_fault_none;
          Alcotest.test_case "deterministic" `Quick test_fault_deterministic;
          Alcotest.test_case "bernoulli reproducible" `Quick test_fault_bernoulli_reproducible;
          Alcotest.test_case "bernoulli rate" `Quick test_fault_bernoulli_rate;
          Alcotest.test_case "burst stationary rate" `Quick test_fault_burst_stationary_rate;
          Alcotest.test_case "validation" `Quick test_fault_validation;
          Alcotest.test_case "reset_to determinism" `Quick
            test_fault_reset_to_determinism;
          QCheck_alcotest.to_alcotest prop_burst_loss_rate_converges;
        ] );
      ( "client",
        [
          Alcotest.test_case "error-free retrieval" `Quick test_client_error_free;
          Alcotest.test_case "B from slot 2" `Quick test_client_b_from_slot_2;
          Alcotest.test_case "single loss: ida vs flat" `Quick test_client_single_loss_ida_vs_flat;
          Alcotest.test_case "flat worst single loss" `Quick test_client_flat_worst_loss;
          Alcotest.test_case "max_slots cap" `Quick test_client_max_slots;
          Alcotest.test_case "validation" `Quick test_client_validation;
          Alcotest.test_case "typed retrieve_checked" `Quick
            test_client_retrieve_checked;
          Alcotest.test_case "report hook" `Quick test_client_report_hook;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "error-free worst case" `Quick test_adversary_error_free_matches_lemma;
          Alcotest.test_case "flat = lemma-1 tight (Fig 7)" `Quick test_adversary_flat_is_lemma1_tight;
          Alcotest.test_case "ida beats flat" `Quick test_adversary_ida_beats_flat;
          Alcotest.test_case "lemma-2 bound within redundancy" `Quick
            test_adversary_lemma2_bound_within_redundancy;
          Alcotest.test_case "dominates random clients" `Quick
            test_adversary_dominates_random_clients;
          Alcotest.test_case "validation" `Quick test_adversary_validation;
        ] );
      ( "transport",
        [
          Alcotest.test_case "on air" `Quick test_transport_on_air;
          Alcotest.test_case "roundtrip error-free" `Quick test_transport_roundtrip_error_free;
          Alcotest.test_case "roundtrip under loss" `Quick test_transport_roundtrip_under_loss;
          Alcotest.test_case "validation" `Quick test_transport_validation;
          Alcotest.test_case "report hook" `Quick test_transport_report_hook;
        ] );
      ( "transaction",
        [
          Alcotest.test_case "concurrent harvest" `Quick test_transaction_concurrent_harvest;
          Alcotest.test_case "worst case is max not sum" `Quick
            test_transaction_worst_case_is_max_not_sum;
          Alcotest.test_case "dominates simulation" `Quick
            test_transaction_worst_case_dominates_simulation;
          Alcotest.test_case "shared budget" `Quick test_transaction_shared_budget;
          Alcotest.test_case "validation" `Quick test_transaction_validation;
          Alcotest.test_case "starved" `Quick test_transaction_starved;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic and sorted" `Quick
            test_workload_deterministic_and_sorted;
          Alcotest.test_case "rate scales volume" `Quick test_workload_rate_scales;
          Alcotest.test_case "zipf skew" `Quick test_workload_zipf_skew;
        ] );
      ( "engine",
        [
          Alcotest.test_case "error-free meets all" `Quick test_engine_error_free_all_meet;
          Alcotest.test_case "per-file consistency" `Quick test_engine_per_file_consistency;
          Alcotest.test_case "loss monotone" `Quick test_engine_loss_monotone;
          Alcotest.test_case "per-file miss ratio" `Quick
            test_engine_file_miss_ratio;
          Alcotest.test_case "pp_result lists per-file ratios" `Quick
            test_engine_pp_result_lists_per_file_ratios;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "error-free" `Quick test_experiment_error_free;
          Alcotest.test_case "lossy monotone" `Quick test_experiment_lossy_monotone;
          Alcotest.test_case "ida beats flat" `Quick test_experiment_ida_beats_flat_under_loss;
        ] );
      ( "drive",
        [
          Alcotest.test_case "equals engine (error-free)" `Quick
            test_drive_equals_engine_error_free;
          Alcotest.test_case "equals engine (under loss)" `Quick
            test_drive_equals_engine_under_loss;
          Alcotest.test_case "occurrences per period" `Quick
            test_drive_occurrences_per_period;
          Alcotest.test_case "validation" `Quick test_drive_validation;
        ] );
      ( "cohort",
        [
          Alcotest.test_case "run equals drive (programs x faults x seeds)"
            `Quick test_cohort_run_equals_drive;
          Alcotest.test_case "run equals drive under max_slots" `Quick
            test_cohort_run_equals_drive_max_slots;
          Alcotest.test_case "prep reuse" `Quick test_cohort_prep_reuse;
          Alcotest.test_case "classes of trace" `Quick
            test_cohort_classes_of_trace;
          Alcotest.test_case "population no-loss equals drive" `Quick
            test_cohort_population_no_loss_equals_drive;
          Alcotest.test_case "population mass conservation" `Quick
            test_cohort_population_mass_conservation;
          Alcotest.test_case "analytic close to sampled" `Quick
            test_cohort_population_analytic_close_to_sampled;
          Alcotest.test_case "population validation" `Quick
            test_cohort_population_validation;
          QCheck_alcotest.to_alcotest prop_cohort_permutation_invariant;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "deterministic and sorted" `Quick
            test_ycsb_deterministic;
          Alcotest.test_case "zipfian skew (chi-squared)" `Quick
            test_ycsb_zipfian_skew;
          Alcotest.test_case "hotspot shares" `Quick test_ycsb_hotspot;
          Alcotest.test_case "shifting rotates" `Quick
            test_ycsb_shifting_rotates;
          Alcotest.test_case "diurnal wave" `Quick test_ycsb_diurnal_wave;
          Alcotest.test_case "flash crowd" `Quick test_ycsb_flash_crowd;
          Alcotest.test_case "validation" `Quick test_ycsb_validation;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "streamer matches on_air" `Quick
            test_streamer_matches_on_air;
          Alcotest.test_case "retrieve_streamed roundtrip" `Quick
            test_retrieve_streamed_roundtrip;
          Alcotest.test_case "streamer validate" `Quick test_streamer_validate;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "typed unknown-file errors" `Quick
            test_transport_unknown_file_typed;
          Alcotest.test_case "retrieve_result verdicts" `Quick
            test_retrieve_result_typed;
          Alcotest.test_case "resilient retry across cycles" `Quick
            test_retrieve_resilient_retries_across_cycles;
          Alcotest.test_case "resilient retries observable" `Quick
            test_retrieve_resilient_records_retries;
        ] );
    ]
