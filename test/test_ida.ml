module Ida = Pindisk_ida.Ida
module Aida = Pindisk_ida.Aida

let bytes_of_string = Bytes.of_string

let check_bytes msg expected actual =
  Alcotest.(check string) msg (Bytes.to_string expected) (Bytes.to_string actual)

(* ------------------------------------------------------------------ *)
(* IDA                                                                *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_all_pieces () =
  let file = bytes_of_string "the quick brown fox jumps over the lazy dog" in
  let ida = Ida.create ~m:5 in
  let pieces = Ida.disperse ida ~n:10 file in
  Alcotest.(check int) "ten pieces" 10 (Array.length pieces);
  let back =
    Ida.reconstruct ida ~length:(Bytes.length file) (Array.to_list pieces)
  in
  check_bytes "roundtrip" file back

let test_roundtrip_any_m_subset () =
  let file = bytes_of_string "pinwheel broadcast disks" in
  let m = 3 in
  let ida = Ida.create ~m in
  let pieces = Array.to_list (Ida.disperse ida ~n:7 file) in
  (* Every 3-subset of the 7 pieces must reconstruct. *)
  let rec subsets k = function
    | [] -> if k = 0 then [ [] ] else []
    | x :: rest ->
        if k = 0 then [ [] ]
        else
          List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
  in
  List.iter
    (fun subset ->
      let back = Ida.reconstruct ida ~length:(Bytes.length file) subset in
      check_bytes "subset reconstructs" file back)
    (subsets m pieces)

let test_too_few_pieces () =
  let ida = Ida.create ~m:4 in
  let pieces = Ida.disperse ida ~n:6 (bytes_of_string "0123456789ab") in
  Alcotest.check_raises "three pieces insufficient"
    (Invalid_argument "Ida.reconstruct: fewer than m distinct pieces") (fun () ->
      ignore
        (Ida.reconstruct ida ~length:12 [ pieces.(0); pieces.(1); pieces.(2) ]))

let test_duplicate_indices_dont_count () =
  let ida = Ida.create ~m:3 in
  let pieces = Ida.disperse ida ~n:5 (bytes_of_string "abcdef") in
  Alcotest.check_raises "duplicates collapse"
    (Invalid_argument "Ida.reconstruct: fewer than m distinct pieces") (fun () ->
      ignore (Ida.reconstruct ida ~length:6 [ pieces.(0); pieces.(0); pieces.(0) ]))

let test_extra_pieces_ignored () =
  let file = bytes_of_string "redundancy is uniform in IDA" in
  let ida = Ida.create ~m:4 in
  let pieces = Array.to_list (Ida.disperse ida ~n:9 file) in
  let back = Ida.reconstruct ida ~length:(Bytes.length file) pieces in
  check_bytes "extras ignored" file back

let test_padding () =
  (* Length not a multiple of m: padding must be stripped on rebuild. *)
  let ida = Ida.create ~m:4 in
  let file = bytes_of_string "seven b" in
  let pieces = Ida.disperse ida ~n:4 file in
  Alcotest.(check int) "piece size is ceil(7/4)" 2 (Bytes.length pieces.(0).Ida.data);
  let back = Ida.reconstruct ida ~length:7 (Array.to_list pieces) in
  check_bytes "padded roundtrip" file back

let test_m_one () =
  (* m = 1 is pure replication. *)
  let ida = Ida.create ~m:1 in
  let file = bytes_of_string "x" in
  let pieces = Ida.disperse ida ~n:3 file in
  Array.iter
    (fun p -> check_bytes "replica" file (Ida.reconstruct ida ~length:1 [ p ]))
    pieces

let test_empty_file () =
  let ida = Ida.create ~m:3 in
  let pieces = Ida.disperse ida ~n:5 Bytes.empty in
  let back = Ida.reconstruct ida ~length:0 (Array.to_list pieces) in
  Alcotest.(check int) "empty" 0 (Bytes.length back)

let test_bad_params () =
  Alcotest.check_raises "m = 0" (Invalid_argument "Ida.create: m must be in [1, 255]")
    (fun () -> ignore (Ida.create ~m:0));
  Alcotest.check_raises "m = 256" (Invalid_argument "Ida.create: m must be in [1, 255]")
    (fun () -> ignore (Ida.create ~m:256));
  let ida = Ida.create ~m:5 in
  Alcotest.check_raises "n < m" (Invalid_argument "Ida.disperse: need m <= n <= 255")
    (fun () -> ignore (Ida.disperse ida ~n:4 (bytes_of_string "hello")));
  Alcotest.check_raises "n > 255" (Invalid_argument "Ida.disperse: need m <= n <= 255")
    (fun () -> ignore (Ida.disperse ida ~n:256 (bytes_of_string "hello")))

let test_piece_indices_self_identify () =
  let ida = Ida.create ~m:2 in
  let pieces = Ida.disperse ida ~n:4 (bytes_of_string "abcd") in
  Array.iteri (fun i p -> Alcotest.(check int) "index" i p.Ida.index) pieces

let test_overhead () =
  Alcotest.(check (float 1e-9)) "n/m" 2.0 (Ida.overhead ~m:5 ~n:10);
  Alcotest.(check (float 1e-9)) "no redundancy" 1.0 (Ida.overhead ~m:5 ~n:5)

let test_duplicate_keeps_first () =
  (* Two pieces share an index but disagree in content: reconstruction
     must use the FIRST occurrence, deterministically. *)
  let file = bytes_of_string "first occurrence wins" in
  let ida = Ida.create ~m:3 in
  let pieces = Ida.disperse ida ~n:5 file in
  let forged =
    { Ida.index = pieces.(1).Ida.index;
      data = Bytes.map (fun c -> Char.chr (Char.code c lxor 0xff)) pieces.(1).Ida.data }
  in
  let len = Bytes.length file in
  (* genuine piece first: the forged duplicate is ignored *)
  let back =
    Ida.reconstruct ida ~length:len
      [ pieces.(0); pieces.(1); forged; pieces.(2) ]
  in
  check_bytes "genuine first" file back;
  (* forged piece first: it shadows the genuine one and corrupts output *)
  let bad =
    Ida.reconstruct ida ~length:len
      [ pieces.(0); forged; pieces.(1); pieces.(2) ]
  in
  Alcotest.(check bool) "forged first corrupts" false (Bytes.equal file bad)

(* Golden dispersal: the wire format must never drift. Expected bytes are
   pinned literally and re-derived from an independent scalar GF(256)
   model (carry-less shift-and-xor multiply, Vandermonde row i = powers
   of 3^i, systematized by Gauss-Jordan against the top square) that
   shares no code with the library kernels. The first [m] pieces are the
   source blocks verbatim — the systematic prefix is part of the wire
   format. *)
let test_golden_dispersal () =
  let file = bytes_of_string "GOLDEN" in
  let m = 3 and n = 5 in
  let golden =
    [| (0, "GO"); (1, "LD"); (2, "EN"); (3, "\x1a\x1b"); (4, "\xb4\x98") |]
  in
  let ida = Ida.create ~m in
  let pieces = Ida.disperse ida ~n file in
  Array.iteri
    (fun i (idx, data) ->
      Alcotest.(check int) "golden index" idx pieces.(i).Ida.index;
      check_bytes "golden data" (bytes_of_string data) pieces.(i).Ida.data)
    golden;
  (* independent model *)
  let slow_mul a b =
    let rec go acc a b =
      if b = 0 then acc
      else
        let acc = if b land 1 = 1 then acc lxor a else acc in
        let a = a lsl 1 in
        let a = if a land 0x100 <> 0 then a lxor 0x11b else a in
        go acc a (b lsr 1)
    in
    go 0 (a land 0xff) (b land 0xff)
  in
  let slow_inv a =
    let rec find x = if slow_mul a x = 1 then x else find (x + 1) in
    find 1
  in
  (* Vandermonde row i = powers of 3^i. *)
  let v =
    Array.init n (fun i ->
        let a =
          let rec pow3 acc k = if k = 0 then acc else pow3 (slow_mul acc 3) (k - 1) in
          pow3 1 i
        in
        let row = Array.make m 0 in
        let c = ref 1 in
        for j = 0 to m - 1 do
          row.(j) <- !c;
          c := slow_mul !c a
        done;
        row)
  in
  (* Invert the top m x m square by Gauss-Jordan. *)
  let a = Array.init m (fun i -> Array.copy v.(i)) in
  let tinv = Array.init m (fun i -> Array.init m (fun j -> if i = j then 1 else 0)) in
  for col = 0 to m - 1 do
    let p = ref col in
    while a.(!p).(col) = 0 do
      incr p
    done;
    let swap arr =
      let t = arr.(col) in
      arr.(col) <- arr.(!p);
      arr.(!p) <- t
    in
    swap a;
    swap tinv;
    let s = slow_inv a.(col).(col) in
    for j = 0 to m - 1 do
      a.(col).(j) <- slow_mul s a.(col).(j);
      tinv.(col).(j) <- slow_mul s tinv.(col).(j)
    done;
    for r = 0 to m - 1 do
      if r <> col && a.(r).(col) <> 0 then begin
        let f = a.(r).(col) in
        for j = 0 to m - 1 do
          a.(r).(j) <- a.(r).(j) lxor slow_mul f a.(col).(j);
          tinv.(r).(j) <- tinv.(r).(j) lxor slow_mul f tinv.(col).(j)
        done
      end
    done
  done;
  (* Systematic dispersal row i = (V * Tinv) row i. *)
  let srow i =
    Array.init m (fun j ->
        let acc = ref 0 in
        for k = 0 to m - 1 do
          acc := !acc lxor slow_mul v.(i).(k) tinv.(k).(j)
        done;
        !acc)
  in
  let s = (Bytes.length file + m - 1) / m in
  let block j i =
    let off = (j * s) + i in
    if off < Bytes.length file then Char.code (Bytes.get file off) else 0
  in
  Array.iteri
    (fun i p ->
      let row = srow i in
      for byte = 0 to s - 1 do
        let expect = ref 0 in
        for j = 0 to m - 1 do
          expect := !expect lxor slow_mul row.(j) (block j byte)
        done;
        Alcotest.(check int)
          (Printf.sprintf "model piece %d byte %d" i byte)
          !expect
          (Char.code (Bytes.get p.Ida.data byte))
      done)
    pieces

let test_inverse_cache_capped () =
  let ida = Ida.create ~m:2 in
  Ida.set_cache_cap ida 3;
  let file = bytes_of_string "cache cap" in
  let pieces = Ida.disperse ida ~n:8 file in
  let len = Bytes.length file in
  (* touch more distinct subsets than the cap *)
  for a = 0 to 6 do
    let subset = [ pieces.(a); pieces.(a + 1) ] in
    check_bytes "reconstructs" file (Ida.reconstruct ida ~length:len subset)
  done;
  Alcotest.(check bool) "cache within cap" true (Ida.cached_inverses ida <= 3);
  (* capped cache still answers correctly on both hits and misses *)
  for a = 6 downto 0 do
    let subset = [ pieces.(a); pieces.(a + 1) ] in
    check_bytes "reconstructs after eviction" file
      (Ida.reconstruct ida ~length:len subset)
  done;
  Alcotest.(check bool) "still within cap" true (Ida.cached_inverses ida <= 3);
  Alcotest.check_raises "cap must be positive"
    (Invalid_argument "Ida.set_cache_cap: cap must be >= 1") (fun () ->
      Ida.set_cache_cap ida 0)

let test_cache_replaces_oldest () =
  (* The lock-free cache replaces the oldest entry under capacity
     pressure (insertion order, not access order — entries are immutable
     so hits touch nothing). Sequentially that is fully deterministic. *)
  let ida = Ida.create ~m:2 in
  Ida.set_cache_cap ida 2;
  let file = bytes_of_string "replacement" in
  let pieces = Ida.disperse ida ~n:6 file in
  let len = Bytes.length file in
  let recon a b = ignore (Ida.reconstruct ida ~length:len [ pieces.(a); pieces.(b) ]) in
  recon 0 1;
  (* miss *)
  recon 2 3;
  (* miss *)
  recon 0 1;
  (* hit *)
  recon 4 5;
  (* miss; at cap, so the oldest entry (0,1) is replaced *)
  Alcotest.(check int) "cap held" 2 (Ida.cached_inverses ida);
  recon 2 3;
  (* hit: survived the replacement *)
  recon 4 5;
  (* hit *)
  Alcotest.(check (pair int int)) "hits/misses" (3, 3) (Ida.cache_stats ida);
  recon 0 1;
  (* miss again: it was the replaced entry *)
  Alcotest.(check (pair int int)) "replaced entry misses" (3, 4)
    (Ida.cache_stats ida)

let test_transmit_wastes_no_encode_passes () =
  (* Aida.transmit at capacity c must encode exactly the allocated n
     pieces — the seed encoded all [capacity] rows and discarded the
     rest. *)
  let ida = Ida.create ~m:4 in
  let file = bytes_of_string "no wasted encode passes" in
  let before = Ida.encode_passes () in
  let sent = Aida.transmit ida ~capacity:32 Aida.Important file in
  let used = Ida.encode_passes () - before in
  Alcotest.(check int) "m + 2 pieces sent" 6 (Array.length sent);
  Alcotest.(check int) "exactly n encode passes" 6 used;
  (* non-real-time: no redundancy, exactly m passes *)
  let before = Ida.encode_passes () in
  ignore (Aida.transmit ida ~capacity:32 Aida.Non_real_time file);
  Alcotest.(check int) "nrt passes" 4 (Ida.encode_passes () - before)

let prop_parallel_matches_sequential =
  (* The pool path must be byte-identical to the sequential path for both
     disperse and reconstruct, across the parallel cutoff. *)
  QCheck2.Test.make ~name:"pool disperse/reconstruct == sequential" ~count:20
    QCheck2.Gen.(
      triple (int_range 1 6)
        (oneofl [ 0; 1; 37; 1024; 40_000 ])
        (int_bound 1_000_000))
    (fun (m, len, seed) ->
      let rng = Random.State.make [| seed |] in
      let n = m + 2 in
      let file = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
      let ida = Ida.create ~m in
      let pool = Pindisk_util.Pool.create ~domains:3 () in
      Fun.protect
        ~finally:(fun () -> Pindisk_util.Pool.shutdown pool)
        (fun () ->
          let seq = Ida.disperse ida ~n file in
          let par = Ida.disperse ~pool ida ~n file in
          let pieces_equal =
            Array.for_all2
              (fun a b ->
                a.Ida.index = b.Ida.index && Bytes.equal a.Ida.data b.Ida.data)
              seq par
          in
          let subset = Array.to_list (Array.sub par (n - m) m) in
          let seq_back = Ida.reconstruct ida ~length:len subset in
          let par_back = Ida.reconstruct ~pool ida ~length:len subset in
          pieces_equal
          && Bytes.equal seq_back file
          && Bytes.equal par_back file))

let test_multi_domain_reconstruct_shared_context () =
  (* Several domains reconstruct concurrently through ONE Ida.t — cold
     cache, overlapping row subsets — exercising the lock-free inverse
     cache under real races. Every result must equal the file, and the
     cache must stay within its cap. *)
  let m = 5 in
  let len = 40_000 in
  let rng = Random.State.make [| 4242 |] in
  let file = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
  let ida = Ida.create ~m in
  Ida.set_cache_cap ida 4;
  let pieces = Ida.disperse ida ~n:12 file in
  let subsets =
    (* coded-heavy subsets so reconstruction exercises the kernel, plus
       the all-systematic one *)
    [|
      [ 7; 8; 9; 10; 11 ]; [ 0; 8; 9; 10; 11 ]; [ 1; 2; 9; 10; 11 ];
      [ 3; 4; 5; 10; 11 ]; [ 0; 1; 2; 3; 4 ]; [ 2; 5; 7; 9; 11 ];
    |]
  in
  let worker d () =
    let ok = ref true in
    for round = 0 to 11 do
      let subset =
        List.map (fun i -> pieces.(i))
          subsets.((d + round) mod Array.length subsets)
      in
      let back = Ida.reconstruct ida ~length:len subset in
      if not (Bytes.equal back file) then ok := false
    done;
    !ok
  in
  let domains = Array.init 3 (fun d -> Domain.spawn (worker (d + 1))) in
  let own = worker 0 () in
  let all = Array.for_all Domain.join domains && own in
  Alcotest.(check bool) "all domains reconstruct the file" true all;
  Alcotest.(check bool) "cache within cap" true (Ida.cached_inverses ida <= 4);
  let hits, misses = Ida.cache_stats ida in
  Alcotest.(check int) "every lookup accounted" 48 (hits + misses)

(* qcheck: random files, parameters and subsets *)

let prop_dispersal_linear =
  (* IDA is a linear code: dispersing the XOR of two equal-length files
     gives the XOR of their dispersals, block by block. *)
  QCheck2.Test.make ~name:"dispersal is linear over GF(2)" ~count:60
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 60) (int_bound 1_000_000))
    (fun (m, len, seed) ->
      let rng = Random.State.make [| seed |] in
      let n = m + 3 in
      let file () = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
      let x = file () and y = file () in
      let xor a b =
        Bytes.init len (fun i ->
            Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))
      in
      let ida = Ida.create ~m in
      let dx = Ida.disperse ida ~n x
      and dy = Ida.disperse ida ~n y
      and dxy = Ida.disperse ida ~n (xor x y) in
      Array.for_all
        (fun i ->
          let s = Bytes.length dx.(i).Ida.data in
          let rec ok p =
            p >= s
            || Char.code (Bytes.get dx.(i).Ida.data p)
               lxor Char.code (Bytes.get dy.(i).Ida.data p)
               = Char.code (Bytes.get dxy.(i).Ida.data p)
               && ok (p + 1)
          in
          ok 0)
        (Array.init n (fun i -> i)))

let prop_any_loss_pattern_up_to_redundancy =
  QCheck2.Test.make ~name:"every loss pattern within redundancy reconstructs" ~count:80
    QCheck2.Gen.(pair (int_range 1 6) (int_bound 1_000_000))
    (fun (m, seed) ->
      let rng = Random.State.make [| seed |] in
      let r = 1 + Random.State.int rng 3 in
      let n = m + r in
      let len = 1 + Random.State.int rng 40 in
      let file = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
      let ida = Ida.create ~m in
      let pieces = Array.to_list (Ida.disperse ida ~n file) in
      (* Drop a random subset of exactly r pieces. *)
      let dropped = Array.make n false in
      let k = ref 0 in
      while !k < r do
        let i = Random.State.int rng n in
        if not dropped.(i) then begin
          dropped.(i) <- true;
          incr k
        end
      done;
      let survivors = List.filter (fun p -> not dropped.(p.Ida.index)) pieces in
      Bytes.equal (Ida.reconstruct ida ~length:len survivors) file)

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"random m-of-n subset reconstructs" ~count:100
    QCheck2.Gen.(
      triple (int_range 1 12) (int_range 0 200) (int_bound 1_000_000))
    (fun (m, len, seed) ->
      let rng = Random.State.make [| seed |] in
      let n = m + Random.State.int rng (min 12 (256 - m)) in
      let file = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
      let ida = Ida.create ~m in
      let pieces = Array.to_list (Ida.disperse ida ~n file) in
      (* Random subset of exactly m pieces. *)
      let shuffled = List.sort (fun _ _ -> Random.State.int rng 3 - 1) pieces in
      let subset = List.filteri (fun i _ -> i < m) shuffled in
      let subset = List.sort_uniq (fun a b -> compare a.Ida.index b.Ida.index) subset in
      if List.length subset < m then true (* shuffle degenerated; skip *)
      else Bytes.equal (Ida.reconstruct ida ~length:len subset) file)

(* ------------------------------------------------------------------ *)
(* AIDA                                                               *)
(* ------------------------------------------------------------------ *)

let test_redundancy_levels () =
  Alcotest.(check int) "nrt" 0 (Aida.redundancy Aida.Non_real_time);
  Alcotest.(check int) "standard" 1 (Aida.redundancy Aida.Standard);
  Alcotest.(check int) "important" 2 (Aida.redundancy Aida.Important);
  Alcotest.(check int) "critical" 7 (Aida.redundancy (Aida.Critical 7))

let test_allocate () =
  Alcotest.(check int) "no redundancy" 5 (Aida.allocate ~m:5 ~capacity:10 Aida.Non_real_time);
  Alcotest.(check int) "one" 6 (Aida.allocate ~m:5 ~capacity:10 Aida.Standard);
  Alcotest.(check int) "clamped" 10 (Aida.allocate ~m:5 ~capacity:10 (Aida.Critical 99));
  Alcotest.check_raises "bad" (Invalid_argument "Aida.allocate: need 1 <= m <= capacity <= 255")
    (fun () -> ignore (Aida.allocate ~m:5 ~capacity:4 Aida.Standard))

let test_profiles () =
  let combat = [ ("radar", Aida.Critical 3); ("music", Aida.Non_real_time) ] in
  Alcotest.(check int) "radar redundancy" 3
    (Aida.redundancy (Aida.criticality_in combat "radar"));
  Alcotest.(check int) "unknown file defaults" 0
    (Aida.redundancy (Aida.criticality_in combat "weather"))

let test_transmit_is_prefix_of_dispersal () =
  let file = bytes_of_string "mode-dependent redundancy" in
  let ida = Ida.create ~m:4 in
  let sent = Aida.transmit ida ~capacity:8 Aida.Important file in
  Alcotest.(check int) "m + 2 blocks" 6 (Array.length sent);
  let full = Ida.disperse ida ~n:8 file in
  Array.iteri
    (fun i p ->
      Alcotest.(check int) "same index" full.(i).Ida.index p.Ida.index;
      check_bytes "same data" full.(i).Ida.data p.Ida.data)
    sent;
  (* The transmitted blocks alone reconstruct, and survive losing 2. *)
  let survivors = [ sent.(0); sent.(2); sent.(4); sent.(5) ] in
  check_bytes "survives 2 losses" file
    (Ida.reconstruct ida ~length:(Bytes.length file) survivors)

let () =
  Alcotest.run "ida"
    [
      ( "ida",
        [
          Alcotest.test_case "roundtrip all pieces" `Quick test_roundtrip_all_pieces;
          Alcotest.test_case "any m-subset reconstructs" `Quick test_roundtrip_any_m_subset;
          Alcotest.test_case "too few pieces" `Quick test_too_few_pieces;
          Alcotest.test_case "duplicates don't count" `Quick test_duplicate_indices_dont_count;
          Alcotest.test_case "extra pieces ignored" `Quick test_extra_pieces_ignored;
          Alcotest.test_case "padding" `Quick test_padding;
          Alcotest.test_case "m = 1 replication" `Quick test_m_one;
          Alcotest.test_case "empty file" `Quick test_empty_file;
          Alcotest.test_case "bad params" `Quick test_bad_params;
          Alcotest.test_case "self-identifying pieces" `Quick test_piece_indices_self_identify;
          Alcotest.test_case "overhead" `Quick test_overhead;
          Alcotest.test_case "duplicate keeps first occurrence" `Quick
            test_duplicate_keeps_first;
          Alcotest.test_case "golden dispersal" `Quick test_golden_dispersal;
          Alcotest.test_case "inverse cache capped" `Quick test_inverse_cache_capped;
          Alcotest.test_case "cache replaces oldest" `Quick test_cache_replaces_oldest;
          Alcotest.test_case "multi-domain reconstruct shares one context" `Quick
            test_multi_domain_reconstruct_shared_context;
        ] );
      ( "ida-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip_random;
            prop_dispersal_linear;
            prop_any_loss_pattern_up_to_redundancy;
            prop_parallel_matches_sequential;
          ] );
      ( "aida",
        [
          Alcotest.test_case "redundancy levels" `Quick test_redundancy_levels;
          Alcotest.test_case "allocate" `Quick test_allocate;
          Alcotest.test_case "profiles" `Quick test_profiles;
          Alcotest.test_case "transmit prefix" `Quick test_transmit_is_prefix_of_dispersal;
          Alcotest.test_case "transmit wastes no encode passes" `Quick
            test_transmit_wastes_no_encode_passes;
        ] );
    ]
