module Program = Pindisk.Program
module Schedule = Pindisk_pinwheel.Schedule
module Plan = Pindisk_pinwheel.Plan
module Ida = Pindisk_ida.Ida
module Latency = Pindisk_store.Latency
module Block_store = Pindisk_store.Block_store
module Checkpoint = Pindisk_store.Checkpoint
module Server = Pindisk_store.Server
module Scenario = Pindisk_store.Scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let toy_layout =
  [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]

let toy_program () = Program.of_layout toy_layout ~capacities:[ (0, 10); (1, 6) ]

let toy_files =
  [
    (0, 3, Bytes.of_string "intelligent vehicle highway system db");
    (1, 2, Bytes.of_string "awacs feed");
  ]

let toy_store ?(depth = 8) latency =
  Block_store.create ~depth ~latency ~program:(toy_program ()) toy_files

let toy_plan () = Plan.explicit (Program.schedule (toy_program ()))

(* ------------------------------------------------------------------ *)
(* Latency                                                             *)
(* ------------------------------------------------------------------ *)

let test_latency_pure () =
  (* The stochastic verdict is a pure function of (read id, issue slot):
     any call order, any repetition, same verdicts. *)
  let l = Latency.stochastic ~fail_p:0.2 ~slow_p:0.3 ~slow_slots:5 ~seed:42 () in
  let a = List.init 200 (fun i -> Latency.draw l ~read_id:i ~slot:i) in
  let b =
    List.rev
      (List.rev_map (fun i -> Latency.draw l ~read_id:i ~slot:i)
         (List.init 200 Fun.id))
  in
  check_bool "order-independent" true (a = b);
  let failures =
    List.length (List.filter (fun v -> v = Latency.Failed) a)
  in
  check_bool "some reads fail at fail_p 0.2" true
    (failures > 10 && failures < 100)

let test_latency_stuck_window () =
  let base = Latency.fixed 1 in
  let l = Latency.stuck ~from_:10 ~until_:20 base in
  (match Latency.draw l ~read_id:0 ~slot:5 with
  | Latency.Ready_in 1 -> ()
  | _ -> Alcotest.fail "outside the window the base process rules");
  (match Latency.draw l ~read_id:1 ~slot:10 with
  | Latency.Ready_in d -> check_int "pinned to window end" 11 d
  | Latency.Failed -> Alcotest.fail "stuck reads complete, late");
  (match Latency.draw l ~read_id:2 ~slot:19 with
  | Latency.Ready_in d -> check_int "end of window" 2 d
  | Latency.Failed -> Alcotest.fail "stuck reads complete, late");
  match Latency.draw l ~read_id:3 ~slot:20 with
  | Latency.Ready_in 1 -> ()
  | _ -> Alcotest.fail "window is half-open"

let test_latency_validation () =
  Alcotest.check_raises "negative fixed"
    (Invalid_argument "Latency.fixed: negative service time") (fun () ->
      ignore (Latency.fixed (-1)));
  Alcotest.check_raises "fail_p out of range"
    (Invalid_argument "Latency.stochastic: fail_p must be in [0, 1]")
    (fun () -> ignore (Latency.stochastic ~fail_p:1.5 ~seed:0 ()));
  Alcotest.check_raises "bad stuck window"
    (Invalid_argument "Latency.stuck: need 0 <= from_ <= until_") (fun () ->
      ignore (Latency.stuck ~from_:5 ~until_:4 Latency.immediate))

(* ------------------------------------------------------------------ *)
(* Block_store                                                         *)
(* ------------------------------------------------------------------ *)

let test_store_ready_and_cycling () =
  let s = toy_store Latency.immediate in
  Block_store.submit s ~slot:0 ~air:0 ~file:0 ~occurrence:0;
  (match Block_store.take s ~slot:0 with
  | `Ready p -> check_int "occurrence 0 is piece 0" 0 p.Ida.index
  | _ -> Alcotest.fail "immediate read is ready");
  (* Block cycling: occurrence 12 of a capacity-10 file airs piece 2. *)
  Block_store.submit s ~slot:1 ~air:1 ~file:0 ~occurrence:12;
  (match Block_store.take s ~slot:1 with
  | `Ready p -> check_int "occurrence mod capacity" 2 p.Ida.index
  | _ -> Alcotest.fail "immediate read is ready");
  check_int "ids are monotone" 2 (Block_store.next_read s)

let test_store_late_failed_overflow () =
  (* A fixed 5-slot service time with a 2-slot lead: every read is late,
     and stays in the queue until it completes. *)
  let s = toy_store (Latency.fixed 5) in
  Block_store.submit s ~slot:0 ~air:2 ~file:0 ~occurrence:0;
  (match Block_store.take s ~slot:2 with
  | `Late 5 -> ()
  | _ -> Alcotest.fail "read due at 2 completes at 5");
  check_int "late read still occupies the queue" 1
    (Block_store.outstanding s ~slot:2);
  check_int "…until it completes" 0 (Block_store.outstanding s ~slot:5);
  (* Scripted failure surfaces as `Failed at air time. *)
  let s =
    toy_store (Latency.scripted (fun ~read_id:_ ~slot:_ -> Latency.Failed))
  in
  Block_store.submit s ~slot:0 ~air:1 ~file:1 ~occurrence:0;
  (match Block_store.take s ~slot:1 with
  | `Failed -> ()
  | _ -> Alcotest.fail "failed verdict surfaces at air time");
  (* Depth-1 queue: the second in-flight read is shed at submit time. *)
  let s = toy_store ~depth:1 (Latency.fixed 10) in
  Block_store.submit s ~slot:0 ~air:3 ~file:0 ~occurrence:0;
  Block_store.submit s ~slot:1 ~air:4 ~file:0 ~occurrence:1;
  (match Block_store.take s ~slot:4 with
  | `Overflow -> ()
  | _ -> Alcotest.fail "second read overflows a depth-1 queue");
  match Block_store.take s ~slot:5 with
  | `Missing -> ()
  | _ -> Alcotest.fail "no read was submitted for slot 5"

let test_store_validation () =
  Alcotest.check_raises "unknown file at submit"
    (Invalid_argument "Block_store.submit: unknown file 9") (fun () ->
      Block_store.submit (toy_store Latency.immediate) ~slot:0 ~air:0 ~file:9
        ~occurrence:0);
  Alcotest.check_raises "missing content"
    (Invalid_argument "Block_store.create: no content for file 1") (fun () ->
      ignore
        (Block_store.create ~latency:Latency.immediate
           ~program:(toy_program ())
           [ (0, 3, Bytes.of_string "x") ]))

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

let test_server_matches_on_air () =
  (* Under immediate latency the server airs exactly the transport's
     eager on_air sequence — file ids and piece indices. *)
  let transport =
    Pindisk_sim.Transport.create ~program:(toy_program ()) toy_files
  in
  let server = Server.create ~plan:(toy_plan ()) (toy_store Latency.immediate) in
  for slot = 0 to 3 * 8 do
    let _, out = Server.step server in
    match (out, Pindisk_sim.Transport.on_air transport slot) with
    | Server.Idle, None -> ()
    | Server.Piece (f, p), Some (f', p') ->
        check_int (Printf.sprintf "file at %d" slot) f' f;
        check_int (Printf.sprintf "piece at %d" slot) p'.Ida.index p.Ida.index;
        check_bool
          (Printf.sprintf "bytes at %d" slot)
          true
          (Bytes.equal p.Ida.data p'.Ida.data)
    | _ -> Alcotest.failf "slot %d: server and transport disagree" slot
  done

let test_server_late_reads_fault_slots () =
  (* Service time beyond the prefetch lead: every busy slot faults —
     late at first, then by queue overflow once nine 9-slot reads are
     in flight against the depth-8 queue. *)
  let server =
    Server.create ~lookahead:2 ~plan:(toy_plan ()) (toy_store (Latency.fixed 9))
  in
  let late = ref 0 and overflow = ref 0 in
  for _ = 1 to 16 do
    match snd (Server.step server) with
    | Server.Idle -> Alcotest.fail "toy program has no idle slots"
    | Server.Faulted (Server.Read_late _) -> incr late
    | Server.Faulted Server.Queue_overflow -> incr overflow
    | _ -> Alcotest.fail "9-slot reads with a 2-slot lead cannot air"
  done;
  check_bool "late faults observed" true (!late > 0);
  check_bool "queue eventually overflows" true (!overflow > 0)

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let server =
    Server.create ~plan:(toy_plan ())
      (toy_store (Latency.stochastic ~fail_p:0.1 ~slow_p:0.3 ~slow_slots:6
                    ~seed:3 ()))
  in
  for _ = 1 to 23 do
    ignore (Server.step server)
  done;
  let c = Server.checkpoint server in
  check_int "slot" 23 c.Checkpoint.slot;
  check_int "period stamp" 2 c.Checkpoint.period_stamp;
  let s = Checkpoint.to_string c in
  (match Checkpoint.of_string s with
  | Ok c' ->
      check_bool "parse inverts print" true (c = c');
      Alcotest.(check string) "reprint is byte-stable" s
        (Checkpoint.to_string c')
  | Error e -> Alcotest.failf "round trip failed: %s" e);
  (* Schema and queue-shape errors are typed, not exceptions. *)
  (match Checkpoint.of_string "{\"schema\": \"bogus v0\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus schema must be rejected");
  match Checkpoint.of_string "[1, 2]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object must be rejected"

let test_checkpoint_file_roundtrip () =
  let server = Server.create ~plan:(toy_plan ()) (toy_store Latency.immediate) in
  for _ = 1 to 5 do
    ignore (Server.step server)
  done;
  let c = Server.checkpoint server in
  let path = Filename.temp_file "pindisk_ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Checkpoint.save c path;
      match Checkpoint.load path with
      | Ok c' -> check_bool "file round trip" true (c = c')
      | Error e -> Alcotest.failf "load failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Crash-restart determinism (the acceptance test)                     *)
(* ------------------------------------------------------------------ *)

let chaotic_latency () =
  Latency.stochastic ~fail_p:0.08 ~slow_p:0.25 ~slow_slots:5 ~seed:97 ()

let test_crash_restart_determinism () =
  (* Kill the server at an arbitrary slot, restart from the latest
     checkpoint, and require the re-aired slot sequence byte-identical
     to an uninterrupted run — at every kill position and at several
     checkpoint cadences, under a lossy, slow storage process. *)
  let horizon = 96 in
  let plan = toy_plan () in
  let reference =
    let server = Server.create ~lookahead:3 ~plan (toy_store (chaotic_latency ())) in
    Array.init horizon (fun _ -> snd (Server.step server))
  in
  List.iter
    (fun checkpoint_every ->
      List.iter
        (fun kill_at ->
          let store = toy_store (chaotic_latency ()) in
          let server = ref (Server.create ~lookahead:3 ~plan store) in
          let ckpt = ref (Server.checkpoint !server) in
          for _ = 1 to kill_at do
            ignore (Server.step !server);
            if Server.slot !server mod checkpoint_every = 0 then
              ckpt := Server.checkpoint !server
          done;
          (* The crash: all volatile state dies with !server; the restart
             rebuilds from the checkpoint alone (via its JSON form, so the
             serialization is part of the acceptance path). *)
          let c =
            match Checkpoint.of_string (Checkpoint.to_string !ckpt) with
            | Ok c -> c
            | Error e -> Alcotest.failf "checkpoint decode: %s" e
          in
          (match Server.restore ~lookahead:3 ~plan store c with
          | Ok s -> server := s
          | Error e -> Alcotest.failf "restore: %s" e);
          check_int "restart resumes at the checkpoint slot"
            c.Checkpoint.slot (Server.slot !server);
          for _ = c.Checkpoint.slot to horizon - 1 do
            let l, out = Server.step !server in
            if out <> reference.(l) then
              Alcotest.failf
                "kill %d ckpt-every %d: slot %d differs after restart"
                kill_at checkpoint_every l
          done)
        [ 1; 7; 8; 13; 24; 40; 63 ])
    [ 4; 8; 16 ]

let test_restore_rejects_mismatch () =
  let plan = toy_plan () in
  let server = Server.create ~plan (toy_store Latency.immediate) in
  for _ = 1 to 10 do
    ignore (Server.step server)
  done;
  let c = Server.checkpoint server in
  (* A different program: digest check refuses the checkpoint. *)
  let other_prog = Program.of_layout toy_layout ~capacities:[ (0, 5); (1, 3) ] in
  let other_store =
    Block_store.create ~latency:Latency.immediate ~program:other_prog
      [
        (0, 3, Bytes.of_string "intelligent vehicle highway system db");
        (1, 2, Bytes.of_string "awacs feed");
      ]
  in
  (match
     Server.restore ~plan:(Plan.explicit (Program.schedule other_prog))
       other_store c
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "digest mismatch must be refused");
  (* A doctored period is refused too. *)
  match
    Server.restore ~plan (toy_store Latency.immediate)
      { c with Checkpoint.period = 99 }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "period mismatch must be refused"

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

let test_scenario_suite_green () =
  List.iter
    (fun r ->
      if not (Scenario.ok r) then
        Alcotest.failf "scenario %s violated invariants:@ %a" r.Scenario.spec.Scenario.name
          Scenario.pp_report r)
    (Scenario.run_all ())

let test_scenario_crash_reports_recovery () =
  let r =
    Scenario.run
      (List.find
         (fun s -> s.Scenario.name = "crash-early")
         (Scenario.suite ()))
  in
  check_bool "crash counted" true (r.Scenario.crashes = 1);
  check_bool "recovery time reported" true
    (List.length r.Scenario.recovery_slots = 1);
  check_bool "replayed slots after restart" true (r.Scenario.replayed > 0);
  check_bool "deterministic" true (Scenario.run r.Scenario.spec = r)

let test_scenario_stuck_reader_escalates () =
  let r =
    Scenario.run
      (List.find
         (fun s -> s.Scenario.name = "stuck-reader")
         (Scenario.suite ()))
  in
  check_bool "invariants hold" true (Scenario.ok r);
  check_bool "stall drove the controller off baseline" true
    r.Scenario.escalated;
  check_bool "stuck window faulted slots" true (r.Scenario.faulted >= 30)

let () =
  Alcotest.run "store"
    [
      ( "latency",
        [
          Alcotest.test_case "pure in (read id, slot)" `Quick test_latency_pure;
          Alcotest.test_case "stuck window" `Quick test_latency_stuck_window;
          Alcotest.test_case "validation" `Quick test_latency_validation;
        ] );
      ( "block_store",
        [
          Alcotest.test_case "ready + block cycling" `Quick
            test_store_ready_and_cycling;
          Alcotest.test_case "late, failed, overflow" `Quick
            test_store_late_failed_overflow;
          Alcotest.test_case "validation" `Quick test_store_validation;
        ] );
      ( "server",
        [
          Alcotest.test_case "matches on_air" `Quick test_server_matches_on_air;
          Alcotest.test_case "late reads fault slots" `Quick
            test_server_late_reads_fault_slots;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "json round trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "file round trip" `Quick
            test_checkpoint_file_roundtrip;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash-restart determinism" `Quick
            test_crash_restart_determinism;
          Alcotest.test_case "restore rejects mismatch" `Quick
            test_restore_rejects_mismatch;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "suite green" `Quick test_scenario_suite_green;
          Alcotest.test_case "crash reports recovery" `Quick
            test_scenario_crash_reports_recovery;
          Alcotest.test_case "stuck reader escalates" `Quick
            test_scenario_stuck_reader_escalates;
        ] );
    ]
