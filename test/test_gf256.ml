module Gf = Pindisk_gf256.Gf256
module Matrix = Pindisk_gf256.Matrix

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Field basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_add_is_xor () =
  check_int "0x53 + 0xCA" (0x53 lxor 0xca) (Gf.add 0x53 0xca);
  check_int "x + x = 0" 0 (Gf.add 0x7f 0x7f);
  check_int "x + 0 = x" 0x42 (Gf.add 0x42 0)

let test_mul_known () =
  (* Classic AES-field example: 0x53 * 0xCA = 0x01. *)
  check_int "0x53 * 0xCA = 1" 0x01 (Gf.mul 0x53 0xca);
  check_int "x * 0 = 0" 0 (Gf.mul 0x42 0);
  check_int "x * 1 = x" 0x42 (Gf.mul 0x42 1);
  check_int "2 * 0x80" 0x1b (Gf.mul 2 0x80)

let test_inverse () =
  for x = 1 to 255 do
    check_int (Printf.sprintf "x * inv x (x=%d)" x) 1 (Gf.mul x (Gf.inv x))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Gf.inv 0))

let test_div () =
  check_int "div self" 1 (Gf.div 0xab 0xab);
  check_int "div by one" 0xab (Gf.div 0xab 1);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Gf.div 1 0))

let test_exp_log () =
  check_int "exp 0" 1 (Gf.exp 0);
  check_int "exp 255 wraps" 1 (Gf.exp 255);
  check_int "exp negative wraps" (Gf.exp 254) (Gf.exp (-1));
  for x = 1 to 255 do
    check_int (Printf.sprintf "exp (log %d)" x) x (Gf.exp (Gf.log x))
  done;
  Alcotest.check_raises "log 0" (Invalid_argument "Gf256.log: zero has no discrete log")
    (fun () -> ignore (Gf.log 0))

let test_generator_order () =
  (* 3 generates the full multiplicative group: exp must be injective on
     [0, 255). *)
  let seen = Array.make 256 false in
  for k = 0 to 254 do
    let v = Gf.exp k in
    Alcotest.(check bool) "not seen twice" false seen.(v);
    seen.(v) <- true
  done

let test_pow () =
  check_int "pow 0 0" 1 (Gf.pow 0 0);
  check_int "pow 0 5" 0 (Gf.pow 0 5);
  check_int "pow x 1" 0x57 (Gf.pow 0x57 1);
  check_int "pow matches repeated mul" (Gf.mul (Gf.mul 7 7) 7) (Gf.pow 7 3)

(* qcheck field axioms *)

let elt = QCheck2.Gen.int_range 0 255

let prop name count gen f = QCheck2.Test.make ~name ~count gen f

let field_props =
  [
    prop "mul commutative" 1000 QCheck2.Gen.(pair elt elt) (fun (a, b) ->
        Gf.mul a b = Gf.mul b a);
    prop "mul associative" 1000 QCheck2.Gen.(triple elt elt elt) (fun (a, b, c) ->
        Gf.mul (Gf.mul a b) c = Gf.mul a (Gf.mul b c));
    prop "distributivity" 1000 QCheck2.Gen.(triple elt elt elt) (fun (a, b, c) ->
        Gf.mul a (Gf.add b c) = Gf.add (Gf.mul a b) (Gf.mul a c));
    prop "Fermat: x^255 = 1 for x <> 0" 300 elt (fun x ->
        x = 0 || Gf.pow x 255 = 1);
    prop "Frobenius: (x + y)^2 = x^2 + y^2" 1000 QCheck2.Gen.(pair elt elt)
      (fun (x, y) -> Gf.pow (Gf.add x y) 2 = Gf.add (Gf.pow x 2) (Gf.pow y 2));
    prop "pow homomorphism: x^(a+b) = x^a * x^b" 500
      QCheck2.Gen.(triple elt (int_range 0 30) (int_range 0 30))
      (fun (x, a, b) -> Gf.pow x (a + b) = Gf.mul (Gf.pow x a) (Gf.pow x b));
    prop "div is mul by inverse" 1000 QCheck2.Gen.(pair elt (int_range 1 255))
      (fun (a, b) -> Gf.div a b = Gf.mul a (Gf.inv b));
    prop "mul agrees with slow carry-less model" 1000 QCheck2.Gen.(pair elt elt)
      (fun (a, b) ->
        (* Recompute via shift-and-xor, independent of the tables. *)
        let slow a b =
          let rec go acc a b =
            if b = 0 then acc
            else
              let acc = if b land 1 = 1 then acc lxor a else acc in
              let a = a lsl 1 in
              let a = if a land 0x100 <> 0 then a lxor 0x11b else a in
              go acc a (b lsr 1)
          in
          go 0 a b
        in
        Gf.mul a b = slow a b);
  ]

(* ------------------------------------------------------------------ *)
(* Bulk kernels                                                       *)
(* ------------------------------------------------------------------ *)

(* Reference semantics, one scalar mul at a time. *)
let ref_axpy ~acc ~coeff ~src =
  Bytes.mapi
    (fun i a -> Char.chr (Char.code a lxor Gf.mul coeff (Char.code (Bytes.get src i))))
    acc

let ref_row ~coeffs ~srcs ~len =
  Bytes.init len (fun i ->
      Array.to_list coeffs
      |> List.mapi (fun j c -> Gf.mul c (Char.code (Bytes.get srcs.(j) i)))
      |> List.fold_left ( lxor ) 0 |> Char.chr)

let rand_bytes rng len = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256))

let test_mul_table () =
  for c = 0 to 255 do
    let tab = Gf.mul_table c in
    check_int (Printf.sprintf "table %d length" c) 256 (Bytes.length tab);
    for x = 0 to 255 do
      check_int
        (Printf.sprintf "tab.(%d).(%d)" c x)
        (Gf.mul c x)
        (Char.code (Bytes.get tab x))
    done
  done

let test_axpy_matches_reference () =
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun len ->
      List.iter
        (fun coeff ->
          let src = rand_bytes rng len in
          let acc = rand_bytes rng len in
          let expect = ref_axpy ~acc ~coeff ~src in
          Gf.axpy ~acc ~coeff ~src;
          Alcotest.(check bool)
            (Printf.sprintf "axpy len=%d coeff=%d" len coeff)
            true (Bytes.equal acc expect))
        [ 0; 1; 2; 0x53; 255 ])
    [ 0; 1; 7; 64; 257 ];
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Gf256.axpy: length mismatch") (fun () ->
      Gf.axpy ~acc:(Bytes.create 3) ~coeff:1 ~src:(Bytes.create 4))

let test_mul_into_matches_reference () =
  let rng = Random.State.make [| 8 |] in
  List.iter
    (fun coeff ->
      let src = rand_bytes rng 129 in
      let dst = rand_bytes rng 129 in
      Gf.mul_into ~dst ~coeff ~src;
      Bytes.iteri
        (fun i b ->
          check_int
            (Printf.sprintf "mul_into coeff=%d byte %d" coeff i)
            (Gf.mul coeff (Char.code (Bytes.get src i)))
            (Char.code b))
        dst)
    [ 0; 1; 0xca; 255 ];
  (* in-place: dst == src *)
  let b = rand_bytes rng 33 in
  let copy = Bytes.copy b in
  Gf.mul_into ~dst:b ~coeff:3 ~src:b;
  Alcotest.(check bool) "in place" true
    (Bytes.equal b (ref_row ~coeffs:[| 3 |] ~srcs:[| copy |] ~len:33))

let test_encode_row_matches_reference () =
  let rng = Random.State.make [| 9 |] in
  List.iter
    (fun len ->
      List.iter
        (fun k ->
          let srcs = Array.init k (fun _ -> rand_bytes rng len) in
          let coeffs = Array.init k (fun _ -> Random.State.int rng 256) in
          if k > 1 then coeffs.(1) <- 0;
          (* exercise the zero-coefficient path *)
          let dst = rand_bytes rng len in
          Gf.encode_row ~dst ~coeffs ~srcs;
          Alcotest.(check bool)
            (Printf.sprintf "encode_row len=%d k=%d" len k)
            true
            (Bytes.equal dst (ref_row ~coeffs ~srcs ~len)))
        [ 1; 2; 5; 8 ])
    [ 0; 1; 2; 63; 64; 65 ];
  (* all-zero coefficients blank the destination *)
  let dst = Bytes.make 9 'x' in
  Gf.encode_row ~dst ~coeffs:[| 0; 0 |]
    ~srcs:[| Bytes.make 9 'a'; Bytes.make 9 'b' |];
  Alcotest.(check bool) "zero row blanks" true (Bytes.equal dst (Bytes.make 9 '\000'));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Gf256.encode_row: arity mismatch") (fun () ->
      Gf.encode_row ~dst ~coeffs:[| 1 |] ~srcs:[||])

let test_encode_rows_matches_reference () =
  let rng = Random.State.make [| 10 |] in
  (* Group counts around the 4/2/1 grouping boundaries, odd and even
     lengths, strided sources with slack between blocks. *)
  List.iter
    (fun g ->
      List.iter
        (fun len ->
          let k = 3 in
          let stride = len + 5 in
          let src = rand_bytes rng (k * stride) in
          let blocks =
            Array.init k (fun j -> Bytes.sub src (j * stride) len)
          in
          let rows =
            Array.init g (fun _ -> Array.init k (fun _ -> Random.State.int rng 256))
          in
          let dsts = Array.init g (fun _ -> rand_bytes rng len) in
          Gf.encode_rows ~dsts ~rows ~src ~stride;
          Array.iteri
            (fun i dst ->
              Alcotest.(check bool)
                (Printf.sprintf "encode_rows g=%d len=%d row %d" g len i)
                true
                (Bytes.equal dst (ref_row ~coeffs:rows.(i) ~srcs:blocks ~len)))
            dsts)
        [ 0; 1; 17; 64 ])
    [ 0; 1; 2; 3; 4; 5; 7; 8; 9 ];
  Alcotest.check_raises "stride too small"
    (Invalid_argument "Gf256.encode_rows: stride < dst length") (fun () ->
      Gf.encode_rows
        ~dsts:[| Bytes.create 4 |]
        ~rows:[| [| 1 |] |]
        ~src:(Bytes.create 4) ~stride:3)

let test_ensure_tables () =
  (* Must be callable on any coefficients, repeatedly, without changing
     kernel results. *)
  Gf.ensure_tables [| 0; 1; 254; 255 |];
  Gf.ensure_tables [| 0; 1; 254; 255 |];
  let src = Bytes.init 10 (fun i -> Char.chr (i * 25)) in
  let dst = Bytes.create 10 in
  Gf.encode_row ~dst ~coeffs:[| 255 |] ~srcs:[| src |];
  Alcotest.(check bool) "post ensure_tables" true
    (Bytes.equal dst (ref_row ~coeffs:[| 255 |] ~srcs:[| src |] ~len:10))

let test_wide_tables_build_once_under_race () =
  (* Eight domains racing to first-use every coefficient: one-shot CAS
     publication means each of the 256 wide tables is built exactly once
     process-wide, no matter who wins — so after the race the cumulative
     build counter reads exactly 256 (tables built by earlier tests
     included; duplicates anywhere would push it past). *)
  let all = Array.init 256 (fun c -> c) in
  let domains =
    Array.init 7 (fun _ -> Domain.spawn (fun () -> Gf.ensure_tables all))
  in
  Gf.ensure_tables all;
  Array.iter Domain.join domains;
  check_int "every table built exactly once" 256 (Gf.wide_table_builds ());
  (* and the published tables are the real ones *)
  let src = Bytes.init 257 (fun i -> Char.chr (i * 31 land 0xff)) in
  let dst = Bytes.create 257 in
  Gf.encode_row ~dst ~coeffs:[| 0x8e |] ~srcs:[| src |];
  Alcotest.(check bool) "post-race table correct" true
    (Bytes.equal dst (ref_row ~coeffs:[| 0x8e |] ~srcs:[| src |] ~len:257))

let test_lanes_windows_and_prefix () =
  let rng = Random.State.make [| 11 |] in
  let k = 5 and len = 100 in
  let stride = len + 3 in
  let src = rand_bytes rng (k * stride) in
  let blocks = Array.init k (fun j -> Bytes.sub src (j * stride) len) in
  let rows =
    Array.init 4 (fun _ -> Array.init k (fun _ -> Random.State.int rng 256))
  in
  let l = Gf.lanes rows in
  check_int "group" 4 (Gf.lanes_group l);
  check_int "width" k (Gf.lanes_width l);
  (* Disjoint [pos, len) windows — deliberately unaligned — must compose
     to exactly the full-width result. *)
  let dsts = Array.init 4 (fun _ -> rand_bytes rng len) in
  List.iter
    (fun (pos, wlen) -> Gf.encode_lanes l ~dsts ~src ~stride ~pos ~len:wlen)
    [ (0, 13); (13, 1); (14, 57); (71, 29) ];
  Array.iteri
    (fun i dst ->
      Alcotest.(check bool)
        (Printf.sprintf "windows compose, row %d" i)
        true
        (Bytes.equal dst (ref_row ~coeffs:rows.(i) ~srcs:blocks ~len)))
    dsts;
  (* A dsts prefix shorter than the group uses the same tables and must
     leave the missing rows' work unwritten. *)
  let two = Array.init 2 (fun _ -> Bytes.create len) in
  Gf.encode_lanes l ~dsts:two ~src ~stride ~pos:0 ~len;
  Array.iteri
    (fun i dst ->
      Alcotest.(check bool)
        (Printf.sprintf "prefix row %d" i)
        true
        (Bytes.equal dst (ref_row ~coeffs:rows.(i) ~srcs:blocks ~len)))
    two;
  Alcotest.check_raises "too many dsts"
    (Invalid_argument "Gf256.encode_lanes: need 1 to lanes-group destinations")
    (fun () ->
      Gf.encode_lanes
        (Gf.lanes [| [| 1 |] |])
        ~dsts:(Array.init 2 (fun _ -> Bytes.create 4))
        ~src:(Bytes.create 4) ~stride:4 ~pos:0 ~len:4);
  Alcotest.check_raises "window past dst"
    (Invalid_argument "Gf256.encode_lanes: dst shorter than pos + len")
    (fun () ->
      Gf.encode_lanes
        (Gf.lanes [| [| 1 |] |])
        ~dsts:[| Bytes.create 4 |]
        ~src:(Bytes.create 8) ~stride:8 ~pos:2 ~len:3)

let kernel_props =
  let gen =
    QCheck2.Gen.(
      pair (int_range 0 200) (int_bound 1_000_000))
  in
  [
    prop "encode_rows == per-row encode_row on random strided input" 200 gen
      (fun (len, seed) ->
        let rng = Random.State.make [| seed |] in
        let k = 1 + Random.State.int rng 6 in
        let g = 1 + Random.State.int rng 6 in
        let stride = len + Random.State.int rng 3 in
        let src = rand_bytes rng (k * stride) in
        let blocks = Array.init k (fun j -> Bytes.sub src (j * stride) len) in
        let rows =
          Array.init g (fun _ -> Array.init k (fun _ -> Random.State.int rng 256))
        in
        let dsts = Array.init g (fun _ -> Bytes.create len) in
        Gf.encode_rows ~dsts ~rows ~src ~stride;
        Array.for_all2
          (fun dst row ->
            let one = Bytes.create len in
            Gf.encode_row ~dst:one ~coeffs:row ~srcs:blocks;
            Bytes.equal dst one)
          dsts rows);
    (* Adversarial shapes for the SWAR kernel: odd lengths, strides not
       divisible by 8, unaligned window offsets, zero/one coefficients
       and systematic (unit) rows, and destination prefixes narrower
       than the lane group. Bytes outside the window must be
       untouched. *)
    prop "SWAR encode_lanes == scalar reference on adversarial shapes" 300
      gen
      (fun (len, seed) ->
        let rng = Random.State.make [| seed; 77 |] in
        let k = Random.State.int rng 7 in
        let g = 1 + Random.State.int rng 4 in
        let stride = len + Random.State.int rng 7 in
        let pos = Random.State.int rng (len + 1) in
        let wlen = Random.State.int rng (len - pos + 1) in
        let src = rand_bytes rng (max 1 (k * stride)) in
        let blocks = Array.init k (fun j -> Bytes.sub src (j * stride) len) in
        let rows =
          Array.init g (fun r ->
              Array.init k (fun j ->
                  match Random.State.int rng 6 with
                  | 0 -> 0
                  | 1 -> 1
                  | 2 -> if j = r then 1 else 0
                  | _ -> Random.State.int rng 256))
        in
        let l = Gf.lanes rows in
        let g' = 1 + Random.State.int rng g in
        let dsts = Array.init g' (fun _ -> rand_bytes rng len) in
        let before = Array.map Bytes.copy dsts in
        Gf.encode_lanes l ~dsts ~src ~stride ~pos ~len:wlen;
        let ok = ref true in
        Array.iteri
          (fun r dst ->
            let expect = ref_row ~coeffs:rows.(r) ~srcs:blocks ~len in
            for i = 0 to len - 1 do
              let want =
                if i >= pos && i < pos + wlen then Bytes.get expect i
                else Bytes.get before.(r) i
              in
              if Bytes.get dst i <> want then ok := false
            done)
          dsts;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Matrices                                                           *)
(* ------------------------------------------------------------------ *)

let test_identity () =
  let i3 = Matrix.identity 3 in
  let m = Matrix.create ~rows:3 ~cols:3 (fun i j -> (i * 3) + j + 1) in
  Alcotest.(check bool) "I * M = M" true (Matrix.equal (Matrix.mul i3 m) m);
  Alcotest.(check bool) "M * I = M" true (Matrix.equal (Matrix.mul m i3) m)

let test_invert_identity () =
  match Matrix.invert (Matrix.identity 4) with
  | Some inv -> Alcotest.(check bool) "inv I = I" true (Matrix.equal inv (Matrix.identity 4))
  | None -> Alcotest.fail "identity reported singular"

let test_singular () =
  let m = Matrix.create ~rows:2 ~cols:2 (fun _ _ -> 5) in
  Alcotest.(check bool) "all-equal matrix singular" true (Matrix.invert m = None);
  let z = Matrix.create ~rows:3 ~cols:3 (fun _ _ -> 0) in
  Alcotest.(check bool) "zero matrix singular" true (Matrix.invert z = None)

let test_vandermonde_rows_invertible () =
  let m = 5 in
  let v = Matrix.vandermonde ~rows:40 ~cols:m in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    (* Pick m distinct random rows; the square submatrix must invert. *)
    let rows = Array.init 40 (fun i -> i) in
    for i = 39 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = rows.(i) in
      rows.(i) <- rows.(j);
      rows.(j) <- t
    done;
    let sub = Matrix.select_rows v (Array.sub rows 0 m) in
    match Matrix.invert sub with
    | Some inv ->
        Alcotest.(check bool) "inv * sub = I" true
          (Matrix.equal (Matrix.mul inv sub) (Matrix.identity m))
    | None -> Alcotest.fail "Vandermonde submatrix reported singular"
  done

let test_mul_vec () =
  let m = Matrix.create ~rows:2 ~cols:2 (fun i j -> if i = j then 1 else 0) in
  Alcotest.(check (array int)) "identity mul_vec" [| 10; 20 |] (Matrix.mul_vec m [| 10; 20 |])

let prop_invert_roundtrip =
  QCheck2.Test.make ~name:"random matrix: inv m * m = I when invertible" ~count:200
    QCheck2.Gen.(pair (int_range 1 6) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = Matrix.create ~rows:n ~cols:n (fun _ _ -> Random.State.int rng 256) in
      match Matrix.invert m with
      | None -> true (* singular matrices are legitimately rejected *)
      | Some inv ->
          Matrix.equal (Matrix.mul inv m) (Matrix.identity n)
          && Matrix.equal (Matrix.mul m inv) (Matrix.identity n))

let () =
  Alcotest.run "gf256"
    [
      ( "field",
        [
          Alcotest.test_case "add is xor" `Quick test_add_is_xor;
          Alcotest.test_case "mul known values" `Quick test_mul_known;
          Alcotest.test_case "all inverses" `Quick test_inverse;
          Alcotest.test_case "div" `Quick test_div;
          Alcotest.test_case "exp/log" `Quick test_exp_log;
          Alcotest.test_case "generator order" `Quick test_generator_order;
          Alcotest.test_case "pow" `Quick test_pow;
        ] );
      ("field-properties", List.map QCheck_alcotest.to_alcotest field_props);
      ( "kernels",
        [
          Alcotest.test_case "mul_table" `Quick test_mul_table;
          Alcotest.test_case "axpy matches reference" `Quick
            test_axpy_matches_reference;
          Alcotest.test_case "mul_into matches reference" `Quick
            test_mul_into_matches_reference;
          Alcotest.test_case "encode_row matches reference" `Quick
            test_encode_row_matches_reference;
          Alcotest.test_case "encode_rows matches reference" `Quick
            test_encode_rows_matches_reference;
          Alcotest.test_case "ensure_tables" `Quick test_ensure_tables;
          Alcotest.test_case "wide tables build once under race" `Quick
            test_wide_tables_build_once_under_race;
          Alcotest.test_case "lanes windows and prefix" `Quick
            test_lanes_windows_and_prefix;
        ] );
      ("kernel-properties", List.map QCheck_alcotest.to_alcotest kernel_props);
      ( "matrix",
        [
          Alcotest.test_case "identity laws" `Quick test_identity;
          Alcotest.test_case "invert identity" `Quick test_invert_identity;
          Alcotest.test_case "singular detection" `Quick test_singular;
          Alcotest.test_case "vandermonde rows invertible" `Quick
            test_vandermonde_rows_invertible;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
        ] );
      ( "matrix-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_invert_roundtrip ] );
    ]
