module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode
module Admission = Pindisk_rtdb.Admission
module Database = Pindisk_rtdb.Database
module Aida = Pindisk_ida.Aida
module Program = Pindisk.Program
module Bandwidth = Pindisk.Bandwidth
module File_spec = Pindisk.File_spec
module Verify = Pindisk_pinwheel.Verify
module Q = Pindisk_util.Q

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The AWACS scenario of the paper's introduction, scaled to deciseconds so
   the aircraft's 0.4 s constraint is an integer (4 ds). *)
let aircraft = Item.make ~id:0 ~name:"aircraft" ~blocks:2 ~avi:4 ~value:10 ()
let tank = Item.make ~id:1 ~name:"tank" ~blocks:2 ~avi:60 ~value:5 ()
let terrain = Item.make ~id:2 ~name:"terrain" ~blocks:8 ~avi:120 ~value:1 ()
let awacs_items = [ aircraft; tank; terrain ]

let combat =
  Mode.make ~name:"combat" ~default:Aida.Standard
    [ ("aircraft", Aida.Critical 3); ("terrain", Aida.Non_real_time) ]

let landing =
  Mode.make ~name:"landing" ~default:Aida.Non_real_time
    [ ("terrain", Aida.Standard) ]

(* ------------------------------------------------------------------ *)
(* Item                                                                *)
(* ------------------------------------------------------------------ *)

let test_avi_of_velocity () =
  (* The paper's numbers: 900 km/h at 100 m accuracy -> 0.4 s; 60 km/h ->
     6 s. *)
  Alcotest.(check (float 1e-9)) "aircraft" 0.4
    (Item.avi_of_velocity ~velocity_kmh:900.0 ~accuracy_m:100.0);
  Alcotest.(check (float 1e-9)) "tank" 6.0
    (Item.avi_of_velocity ~velocity_kmh:60.0 ~accuracy_m:100.0)

let test_item_validation () =
  Alcotest.check_raises "bad avi" (Invalid_argument "Item.make: avi must be >= 1")
    (fun () -> ignore (Item.make ~id:0 ~name:"x" ~blocks:1 ~avi:0 ()))

(* ------------------------------------------------------------------ *)
(* Mode                                                                *)
(* ------------------------------------------------------------------ *)

let test_mode_criticality () =
  check_int "aircraft in combat" 3 (Mode.tolerance combat aircraft);
  check_int "tank falls to default" 1 (Mode.tolerance combat tank);
  check_int "terrain dialled down" 0 (Mode.tolerance combat terrain);
  check_int "aircraft in landing" 0 (Mode.tolerance landing aircraft)

let test_mode_to_file_spec () =
  let f = Mode.to_file_spec combat aircraft in
  check_int "blocks" 2 f.File_spec.blocks;
  check_int "latency = avi" 4 f.File_spec.latency;
  check_int "tolerance" 3 f.File_spec.tolerance;
  check_int "capacity m+r" 5 f.File_spec.capacity;
  Alcotest.(check string) "name carried" "aircraft" f.File_spec.name

let test_max_tolerance () =
  check_int "aircraft worst over modes" 3 (Mode.max_tolerance [ combat; landing ] aircraft);
  check_int "terrain worst over modes" 1 (Mode.max_tolerance [ combat; landing ] terrain)

let test_mode_validation () =
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Mode.make: duplicate item names") (fun () ->
      ignore (Mode.make ~name:"m" [ ("a", Aida.Standard); ("a", Aida.Important) ]))

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let test_demand_and_density () =
  (* aircraft under combat: (2 + 3) / 4. *)
  Alcotest.(check string) "demand" "5/4" (Q.to_string (Admission.demand ~mode:combat aircraft));
  check_bool "value density" true
    (abs_float (Admission.value_density ~mode:combat aircraft -. 8.0) < 1e-9)

let test_admit_everything_when_rich () =
  let v = Admission.admit ~bandwidth:10 ~mode:combat awacs_items in
  check_bool "all admitted" true (Admission.all_admitted v);
  check_int "three items" 3 (List.length v.Admission.admitted);
  match v.Admission.program with
  | Some p ->
      check_bool "program satisfies admitted set" true
        (Verify.satisfies (Program.schedule p)
           (Bandwidth.tasks ~bandwidth:10 (Mode.file_specs combat awacs_items)))
  | None -> Alcotest.fail "program expected"

let test_admit_prefers_value_density () =
  (* Starve the channel so the whole load cannot fit; the high-value-
     density aircraft feed must survive and the bulky video feed must
     not. Demands under combat: aircraft (2+3)/4 = 1.25, video
     (50+1)/30 = 1.7 — together 2.95 > bandwidth 2. *)
  let video = Item.make ~id:3 ~name:"video" ~blocks:50 ~avi:30 ~value:5 () in
  let v = Admission.admit ~bandwidth:2 ~mode:combat [ aircraft; video ] in
  check_bool "aircraft admitted" true
    (List.exists (fun i -> i.Item.name = "aircraft") v.Admission.admitted);
  check_bool "video rejected" true
    (List.exists (fun i -> i.Item.name = "video") v.Admission.rejected)

let test_admit_respects_schedulability () =
  (* Whatever was admitted really is schedulable at the bandwidth. *)
  List.iter
    (fun bandwidth ->
      let v = Admission.admit ~bandwidth ~mode:combat awacs_items in
      match v.Admission.admitted with
      | [] -> ()
      | admitted ->
          check_bool
            (Printf.sprintf "schedulable at B=%d" bandwidth)
            true
            (Bandwidth.schedulable ~bandwidth (Mode.file_specs combat admitted)))
    [ 1; 2; 3; 4; 5 ]

let test_admit_bandwidth_one () =
  (* A single-slot channel: the aircraft's combat demand (2+3)/4 > 1 can
     never fit, but the cheap items still go through — degradation, not
     collapse. *)
  let v = Admission.admit ~bandwidth:1 ~mode:combat awacs_items in
  check_bool "something admitted" true (v.Admission.admitted <> []);
  check_bool "aircraft rejected at B=1" true
    (List.exists (fun i -> i.Item.name = "aircraft") v.Admission.rejected);
  check_bool "a program exists for the survivors" true
    (v.Admission.program <> None);
  check_bool "not everything fits" false (Admission.all_admitted v)

let test_admit_empty_candidates () =
  let v = Admission.admit ~bandwidth:4 ~mode:combat [] in
  check_int "nothing admitted" 0 (List.length v.Admission.admitted);
  check_int "nothing rejected" 0 (List.length v.Admission.rejected);
  check_bool "no program for an empty set" true (v.Admission.program = None);
  check_bool "vacuously all admitted" true (Admission.all_admitted v)

let test_admit_duplicate_ids () =
  let clone = Item.make ~id:0 ~name:"aircraft-clone" ~blocks:1 ~avi:8 () in
  Alcotest.check_raises "duplicate ids rejected"
    (Invalid_argument "Admission.admit: duplicate item ids") (fun () ->
      ignore (Admission.admit ~bandwidth:4 ~mode:combat [ aircraft; clone ]))

let test_admit_bandwidth_validation () =
  Alcotest.check_raises "bandwidth below one"
    (Invalid_argument "Admission.admit: bandwidth must be >= 1") (fun () ->
      ignore (Admission.admit ~bandwidth:0 ~mode:combat awacs_items))

(* ------------------------------------------------------------------ *)
(* Database                                                            *)
(* ------------------------------------------------------------------ *)

let db () = Database.create ~items:awacs_items ~modes:[ combat; landing ]

let test_database_provisioning () =
  let d = db () in
  (* Capacity covers the worst mode, so mode switches never re-disperse. *)
  check_int "aircraft capacity" 5 (Database.provisioned_capacity d aircraft);
  check_int "terrain capacity" 9 (Database.provisioned_capacity d terrain);
  List.iter
    (fun mode ->
      List.iter
        (fun f -> check_int "capacity fixed across modes"
            (Database.provisioned_capacity d
               (List.find (fun i -> i.Item.id = f.File_spec.id) awacs_items))
            f.File_spec.capacity)
        (Database.file_specs d ~mode))
    [ combat; landing ]

let test_database_programs_per_mode () =
  let d = db () in
  List.iter
    (fun mode ->
      match Database.program d ~mode with
      | None -> Alcotest.failf "no program for %s" mode.Mode.name
      | Some (b, p) ->
          check_bool "bandwidth at most eq-2" true
            (b <= Database.required_bandwidth d ~mode);
          check_bool "verifies" true
            (Verify.satisfies (Program.schedule p)
               (Bandwidth.tasks ~bandwidth:b (Database.file_specs d ~mode))))
    [ combat; landing ]

let test_database_combat_needs_more_bandwidth () =
  let d = db () in
  check_bool "combat demand exceeds landing demand" true
    (Database.required_bandwidth d ~mode:combat
    >= Database.required_bandwidth d ~mode:landing)

let test_database_validation () =
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Database.create: duplicate item ids") (fun () ->
      ignore
        (Database.create
           ~items:[ aircraft; Item.make ~id:0 ~name:"other" ~blocks:1 ~avi:5 () ]
           ~modes:[ combat ]));
  Alcotest.check_raises "no modes" (Invalid_argument "Database.create: no modes")
    (fun () -> ignore (Database.create ~items:[ aircraft ] ~modes:[]))

let test_database_lookup () =
  let d = db () in
  check_bool "mode found" true (Database.mode d "combat" <> None);
  check_bool "mode missing" true (Database.mode d "cruise" = None)

let () =
  Alcotest.run "rtdb"
    [
      ( "item",
        [
          Alcotest.test_case "avi_of_velocity (paper numbers)" `Quick test_avi_of_velocity;
          Alcotest.test_case "validation" `Quick test_item_validation;
        ] );
      ( "mode",
        [
          Alcotest.test_case "criticality" `Quick test_mode_criticality;
          Alcotest.test_case "to_file_spec" `Quick test_mode_to_file_spec;
          Alcotest.test_case "max_tolerance" `Quick test_max_tolerance;
          Alcotest.test_case "validation" `Quick test_mode_validation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "demand and value density" `Quick test_demand_and_density;
          Alcotest.test_case "rich channel admits all" `Quick test_admit_everything_when_rich;
          Alcotest.test_case "prefers value density" `Quick test_admit_prefers_value_density;
          Alcotest.test_case "respects schedulability" `Quick test_admit_respects_schedulability;
          Alcotest.test_case "bandwidth one" `Quick test_admit_bandwidth_one;
          Alcotest.test_case "empty candidates" `Quick test_admit_empty_candidates;
          Alcotest.test_case "duplicate ids" `Quick test_admit_duplicate_ids;
          Alcotest.test_case "bandwidth validation" `Quick
            test_admit_bandwidth_validation;
        ] );
      ( "database",
        [
          Alcotest.test_case "provisioning" `Quick test_database_provisioning;
          Alcotest.test_case "programs per mode" `Quick test_database_programs_per_mode;
          Alcotest.test_case "combat needs more" `Quick test_database_combat_needs_more_bandwidth;
          Alcotest.test_case "validation" `Quick test_database_validation;
          Alcotest.test_case "lookup" `Quick test_database_lookup;
        ] );
    ]
