(* pindisk: design and inspect fault-tolerant real-time broadcast disks
   from the command line.

   Subcommands:
     schedule   -- schedule a raw pinwheel task system
     bandwidth  -- bandwidth bounds for a set of broadcast files
     program    -- build and print a broadcast program
     convert    -- compile a generalized broadcast condition to nice
                   pinwheel conditions
     simulate   -- stochastic retrieval simulation on a program
     adapt      -- static vs closed-loop adaptive server on a scripted
                   time-varying channel
     stats      -- run a canned deterministic pipeline with the
                   observability layer enabled and emit the metrics
                   snapshot as JSON (or re-print a saved snapshot)
     chaos      -- run the scripted fault-injection scenario suite
                   (crashes, stuck readers, loss bursts) and check the
                   recovery invariants

   File syntax (repeatable -f): NAME:BLOCKS:LATENCY[:TOLERANCE]
   Task syntax (repeatable -t): A/B  (task needs A of every B slots)
   Condition syntax: M:D0,D1,...  (size M, latency vector D). *)

open Cmdliner
module P = Pindisk_pinwheel
module Task = P.Task
module Schedule = P.Schedule
module Scheduler = P.Scheduler
module File_spec = Pindisk.File_spec
module Bandwidth = Pindisk.Bandwidth
module Program = Pindisk.Program
module Bc = Pindisk_algebra.Bc
module Convert = Pindisk_algebra.Convert
module Q = Pindisk_util.Q
module Channels = P.Channels
module Shard = Pindisk.Shard
module Shardcheck = Pindisk_check.Shardcheck
module Multi = Pindisk_sim.Multi

let fail fmt = Format.kasprintf (fun s -> `Error (false, s)) fmt

(* --verbosity / -v from logs.cli, honoured by every subcommand. *)
let setup_logs =
  let setup level =
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ())
  in
  Term.(const setup $ Logs_cli.level ())

(* ---------------- argument parsing ---------------- *)

let parse_task i s =
  match String.split_on_char '/' s with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> (
          match Task.make ~id:i ~a ~b with
          | t -> Ok t
          | exception Invalid_argument e -> Error e)
      | _ -> Error (Printf.sprintf "bad task %S (want A/B)" s))
  | _ -> Error (Printf.sprintf "bad task %S (want A/B)" s)

let parse_file i s =
  match String.split_on_char ':' s with
  | name :: blocks :: latency :: rest -> (
      let tolerance =
        match rest with
        | [] -> Some 0
        | [ t ] -> int_of_string_opt t
        | _ -> None
      in
      match (int_of_string_opt blocks, int_of_string_opt latency, tolerance) with
      | Some blocks, Some latency, Some tolerance -> (
          match File_spec.make ~name ~id:i ~blocks ~latency ~tolerance () with
          | f -> Ok f
          | exception Invalid_argument e -> Error e)
      | _ -> Error (Printf.sprintf "bad file %S" s))
  | _ -> Error (Printf.sprintf "bad file %S (want NAME:BLOCKS:LATENCY[:TOL])" s)

let parse_bc s =
  match String.split_on_char ':' s with
  | [ m; ds ] -> (
      let d = String.split_on_char ',' ds |> List.map int_of_string_opt in
      match (int_of_string_opt m, List.for_all Option.is_some d) with
      | Some m, true -> (
          match Bc.make ~file:0 ~m ~d:(List.map Option.get d) with
          | bc -> Ok bc
          | exception Invalid_argument e -> Error e)
      | _ -> Error (Printf.sprintf "bad condition %S" s))
  | _ -> Error (Printf.sprintf "bad condition %S (want M:D0,D1,...)" s)

let tasks_arg =
  let doc = "A pinwheel task, as A/B (at least A of every B slots)." in
  Arg.(non_empty & opt_all string [] & info [ "t"; "task" ] ~docv:"A/B" ~doc)

let files_arg =
  let doc = "A broadcast file, as NAME:BLOCKS:LATENCY[:TOLERANCE]." in
  Arg.(
    non_empty & opt_all string []
    & info [ "f"; "file" ] ~docv:"NAME:M:T[:R]" ~doc)

let collect parse l =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match parse i s with
        | Ok v -> go (i + 1) (v :: acc) rest
        | Error e -> Error e)
  in
  go 0 [] l

(* ---------------- multi-channel arguments ---------------- *)

let channels_arg =
  let doc =
    "Shard across $(docv) parallel broadcast channels (density-balanced \
     LPT packing; 1 is the unchanged single-channel pipeline)."
  in
  Arg.(value & opt int 1 & info [ "channels" ] ~docv:"K" ~doc)

let tuners_arg =
  let doc = "Tuners per client (multi-channel simulation only)." in
  Arg.(value & opt int 1 & info [ "tuners" ] ~docv:"T" ~doc)

(* Per-channel bandwidth for sharded designs: the smallest rate at which
   every file individually fits a channel, ceil((m+r)/T) maximised over
   the files — deterministic, and independent of K so K sweeps compare
   like with like. *)
let shard_bandwidth files =
  List.fold_left
    (fun acc f ->
      let need = f.File_spec.blocks + f.File_spec.tolerance in
      max acc ((need + f.File_spec.latency - 1) / f.File_spec.latency))
    1 files

(* ---------------- schedule ---------------- *)

let algorithm_arg =
  let alts =
    [
      ("auto", Scheduler.Auto);
      ("sa", Scheduler.Sa);
      ("sx", Scheduler.Sx);
      ("sr", Scheduler.Sr);
      ("sxy", Scheduler.Sxy);
      ("exact", Scheduler.Exact_small);
    ]
  in
  let doc = "Scheduler: auto, sa, sx, sr, sxy or exact." in
  Arg.(value & opt (enum alts) Scheduler.Auto & info [ "a"; "algorithm" ] ~doc)

let online_arg =
  let doc =
    "Also build the lazy online dispatcher for the same system, print its \
     dispatched first period, and check it replays the eager schedule \
     slot-for-slot over two periods."
  in
  Arg.(value & flag & info [ "online" ] ~doc)

let pp_slots ppf slots =
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf " ";
      if v = Schedule.idle then Format.fprintf ppf "."
      else Format.fprintf ppf "%d" v)
    slots

(* K > 1: partition the system with the channel optimizer and print one
   schedule per shard. K = 1 stays on the single-channel path below,
   byte for byte. *)
let schedule_multichannel ~channels ~algorithm sys =
  let t = Channels.plan ~algorithm ~channels sys in
  Format.printf "channels: %d@." channels;
  List.iter
    (fun (s : Channels.shard) ->
      Format.printf "channel %d: %a@.  density: %a@." s.Channels.channel
        Task.pp_system s.Channels.tasks Q.pp s.Channels.density;
      if s.Channels.tasks <> [] then
        let sched = P.Plan.to_schedule s.Channels.plan in
        Format.printf "  schedule (period %d): %a@." (Schedule.period sched)
          Schedule.pp sched
      else Format.printf "  schedule: (idle)@.")
    t.Channels.shards;
  (match t.Channels.shed with
  | [] -> ()
  | shed -> Format.printf "shed: %a@." Task.pp_system shed);
  `Ok ()

let schedule_cmd =
  let run tasks algorithm online channels =
    match collect parse_task tasks with
    | Error e -> fail "%s" e
    | Ok sys when channels < 1 ->
        ignore sys;
        fail "channels must be >= 1"
    | Ok sys when channels > 1 ->
        Format.printf "system: %a@.density: %a@." Task.pp_system sys Q.pp
          (Task.system_density sys);
        schedule_multichannel ~channels ~algorithm sys
    | Ok sys -> (
        Format.printf "system: %a@.density: %a@." Task.pp_system sys Q.pp
          (Task.system_density sys);
        if online then
          Format.printf "pre-check: %a@." P.Density.pp_verdict
            (P.Density.classify sys);
        match Scheduler.schedule ~algorithm sys with
        | Some sched ->
            Format.printf "schedule (period %d): %a@." (Schedule.period sched)
              Schedule.pp sched;
            if online then begin
              match P.Online.of_system ~algorithm sys with
              | None -> Format.printf "online: no plan (unexpected)@."
              | Some d ->
                  let p = P.Online.period d in
                  Format.printf "online (period %d): %a@." p pp_slots
                    (P.Online.take d (min p 64));
                  P.Online.reset d;
                  let agree = ref (p = Schedule.period sched) in
                  for t = 0 to (2 * p) - 1 do
                    if P.Online.next_slot d <> Schedule.task_at sched t then
                      agree := false
                  done;
                  Format.printf "online matches eager over 2 periods: %b@."
                    !agree
            end;
            `Ok ()
        | None ->
            fail "no schedule found by %s"
              (Format.asprintf "%a" Scheduler.pp_algorithm algorithm))
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule a pinwheel task system")
    Term.(
      ret
        (const (fun () -> run)
        $ setup_logs $ tasks_arg $ algorithm_arg $ online_arg $ channels_arg))

(* ---------------- sched-bench ---------------- *)

let sched_bench_cmd =
  (* The e21 "base" family at CLI scale: a quarter of the tasks at window
     n, a quarter at 2n, half at 4n — density 1/2, hyperperiod 4n. *)
  let family n =
    List.init n (fun i ->
        let b = if i < n / 4 then n else if i < n / 2 then 2 * n else 4 * n in
        Task.unit ~id:i ~b)
  in
  let sizes_arg =
    let doc = "Task-system size (repeatable, powers of two >= 8)." in
    Arg.(value & opt_all int [ 16; 64; 256 ] & info [ "n" ] ~docv:"N" ~doc)
  in
  let check_arg =
    let doc =
      "Deterministic mode: verify online/eager agreement over two \
       hyperperiods instead of timing (stable output, used by tests)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run sizes check =
    let bad = List.filter (fun n -> n < 8 || n land (n - 1) <> 0) sizes in
    if bad <> [] then fail "sizes must be powers of two >= 8"
    else begin
      List.iter
        (fun n ->
          let sys = family n in
          match (Scheduler.plan sys, Scheduler.schedule sys) with
          | Some plan, Some sched ->
              let p = P.Plan.period plan in
              if check then begin
                let d = P.Plan.create plan in
                let agree = ref (p = Schedule.period sched) in
                for t = 0 to (2 * p) - 1 do
                  if P.Plan.next d <> Schedule.task_at sched t then
                    agree := false
                done;
                Format.printf
                  "n=%d: period %d, online matches eager over 2 periods: %b@."
                  n p !agree
              end
              else begin
                let t0 = Unix.gettimeofday () in
                let reps = max 1 (1_000_000 / p) in
                let d = P.Plan.create plan in
                let sink = ref 0 in
                for _ = 1 to reps * p do
                  sink := !sink lxor P.Plan.next d
                done;
                ignore (Sys.opaque_identity !sink);
                let ns =
                  (Unix.gettimeofday () -. t0) *. 1e9
                  /. float_of_int (reps * p)
                in
                Format.printf "n=%d: period %d, dispatch %.0f ns/slot@." n p ns
              end
          | _ -> Format.printf "n=%d: not schedulable (unexpected)@." n)
        sizes;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "sched-bench"
       ~doc:
         "Scheduling-scale smoke benchmark: online dispatch over the e21 \
          task family (see `make bench-sched` for the full experiment)")
    Term.(ret (const (fun () -> run) $ setup_logs $ sizes_arg $ check_arg))

(* ---------------- bandwidth ---------------- *)

let bandwidth_cmd =
  let run files =
    match collect parse_file files with
    | Error e -> fail "%s" e
    | Ok files ->
        Format.printf "demand (lower bound): %a blocks/sec@." Q.pp
          (Bandwidth.demand files);
        Format.printf "equation-2 sufficient bandwidth: %d blocks/sec@."
          (Bandwidth.required files);
        (match Bandwidth.minimum files with
        | Some (b, _) ->
            Format.printf "smallest schedulable bandwidth: %d (overhead %.2fx)@."
              b
              (Bandwidth.overhead ~achieved:b files)
        | None -> Format.printf "no schedulable bandwidth found (unexpected)@.");
        `Ok ()
  in
  Cmd.v
    (Cmd.info "bandwidth" ~doc:"Bandwidth bounds for broadcast files")
    Term.(ret (const (fun () -> run) $ setup_logs $ files_arg))

(* ---------------- program ---------------- *)

let program_cmd =
  let run files bandwidth =
    match collect parse_file files with
    | Error e -> fail "%s" e
    | Ok files -> (
        let result =
          match bandwidth with
          | Some b ->
              Program.pinwheel ~bandwidth:b files |> Option.map (fun p -> (b, p))
          | None -> Program.auto files
        in
        match result with
        | None -> fail "not schedulable at that bandwidth"
        | Some (b, p) ->
            Format.printf "bandwidth: %d blocks/sec@." b;
            Format.printf "broadcast period: %d slots@." (Program.period p);
            Format.printf "data cycle: %d slots@." (Program.data_cycle p);
            List.iter
              (fun f ->
                Format.printf
                  "  %-12s %d slots/period, max spacing %s, capacity %d@."
                  f.File_spec.name
                  (Program.occurrences_per_period p f.File_spec.id)
                  (match Program.delta p f.File_spec.id with
                  | Some d -> string_of_int d
                  | None -> "-")
                  (Program.capacity p f.File_spec.id))
              files;
            Format.printf "period layout: %a@." Program.pp p;
            `Ok ())
  in
  let bw =
    Arg.(
      value
      & opt (some int) None
      & info [ "b"; "bandwidth" ] ~doc:"Bandwidth in blocks/sec (default: search).")
  in
  Cmd.v
    (Cmd.info "program" ~doc:"Build and print a broadcast program")
    Term.(ret (const (fun () -> run) $ setup_logs $ files_arg $ bw))

(* ---------------- convert ---------------- *)

let convert_cmd =
  let run spec =
    match parse_bc spec with
    | Error e -> fail "%s" e
    | Ok bc ->
        Format.printf "condition: %a@." Bc.pp bc;
        Format.printf "density lower bound: %a@." Q.pp (Bc.density_lower_bound bc);
        let show label nice =
          Format.printf "  %-8s density %-8s:" label
            (Q.to_string (Convert.density nice));
          List.iter
            (fun e -> Format.printf " pc(%d,%d)" e.Convert.a e.Convert.b)
            nice;
          Format.printf "@."
        in
        show "TR1" (Convert.tr1 bc);
        show "TR2" (Convert.tr2 bc);
        show "single" (Convert.best_single bc);
        let label, best = Convert.best bc in
        Format.printf "winner: %s@." label;
        show "best" best;
        `Ok ()
  in
  let spec =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"M:D0,D1,..." ~doc:"Broadcast condition (size and latency vector).")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Compile a generalized broadcast condition to nice pinwheel conditions")
    Term.(ret (const (fun () -> run) $ setup_logs $ spec))

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let run tasks =
    match collect parse_task tasks with
    | Error e -> fail "%s" e
    | Ok sys ->
        let report = P.Analysis.analyze sys in
        Format.printf "%a@." P.Analysis.pp_report report;
        (match report.P.Analysis.verdict with
        | P.Analysis.Schedulable sched ->
            Format.printf "schedule: %a@." Schedule.pp sched
        | _ -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Diagnose a pinwheel system: certificates, classification, verdict")
    Term.(ret (const (fun () -> run) $ setup_logs $ tasks_arg))

(* ---------------- export / inspect ---------------- *)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Write the program to a file.")

let export_cmd =
  let run files bandwidth output =
    match collect parse_file files with
    | Error e -> fail "%s" e
    | Ok files -> (
        let result =
          match bandwidth with
          | Some b ->
              Program.pinwheel ~bandwidth:b files |> Option.map (fun p -> (b, p))
          | None -> Program.auto files
        in
        match result with
        | None -> fail "not schedulable"
        | Some (b, p) ->
            (match output with
            | Some path ->
                Pindisk.Codec.write p path;
                Format.printf "wrote %s (bandwidth %d blocks/sec)@." path b
            | None -> print_string (Pindisk.Codec.to_string p));
            `Ok ())
  in
  let bw =
    Arg.(
      value
      & opt (some int) None
      & info [ "b"; "bandwidth" ] ~doc:"Bandwidth in blocks/sec (default: search).")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Design a program and serialize it")
    Term.(ret (const (fun () -> run) $ setup_logs $ files_arg $ bw $ out_arg))

let inspect_cmd =
  let run path =
    match Pindisk.Codec.read path with
    | Error e -> fail "%s" e
    | Ok p ->
        Format.printf "period: %d slots; data cycle: %d slots@." (Program.period p)
          (Program.data_cycle p);
        List.iter
          (fun f ->
            Format.printf
              "  file %d: %d slots/period, capacity %d, max spacing %s@." f
              (Program.occurrences_per_period p f)
              (Program.capacity p f)
              (match Program.delta p f with
              | Some d -> string_of_int d
              | None -> "-"))
          (Program.files p);
        Format.printf "layout: %a@." Program.pp p;
        `Ok ()
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH" ~doc:"A program file written by export.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Load and describe a serialized program")
    Term.(ret (const (fun () -> run) $ setup_logs $ path))

(* ---------------- design ---------------- *)

let design_cmd =
  let parse_req i s =
    (* NAME:BYTES:LATENCY[:TOLERANCE] *)
    match String.split_on_char ':' s with
    | name :: bytes :: latency :: rest -> (
        let tolerance =
          match rest with
          | [] -> Some 0
          | [ t ] -> int_of_string_opt t
          | _ -> None
        in
        match (int_of_string_opt bytes, int_of_string_opt latency, tolerance) with
        | Some bytes, Some latency_s, Some tolerance -> (
            match
              Pindisk.Designer.requirement ~name ~tolerance ~id:i ~bytes
                ~latency_s ()
            with
            | r -> Ok r
            | exception Invalid_argument e -> Error e)
        | _ -> Error (Printf.sprintf "bad requirement %S" s))
    | _ -> Error (Printf.sprintf "bad requirement %S (want NAME:BYTES:LAT[:TOL])" s)
  in
  let run reqs byte_rate =
    match collect parse_req reqs with
    | Error e -> fail "%s" e
    | Ok reqs -> (
        match Pindisk.Designer.plan ~byte_rate reqs with
        | Error reason -> fail "no feasible plan: %s" reason
        | Ok plan ->
            Format.printf "%a" Pindisk.Designer.pp plan;
            `Ok ())
  in
  let reqs =
    Arg.(
      non_empty & opt_all string []
      & info [ "r"; "require" ] ~docv:"NAME:BYTES:LAT[:TOL]"
          ~doc:"A physical requirement: payload bytes, latency seconds, losses to survive.")
  in
  let byte_rate =
    Arg.(
      required
      & opt (some int) None
      & info [ "rate" ] ~docv:"BYTES/S" ~doc:"Channel byte rate.")
  in
  Cmd.v
    (Cmd.info "design"
       ~doc:"From physical requirements to a provisioned broadcast disk")
    Term.(ret (const (fun () -> run) $ setup_logs $ reqs $ byte_rate))

(* ---------------- audit ---------------- *)

let audit_cmd =
  let module Check = Pindisk_check in
  let run path minify =
    match Check.Spec.load path with
    | Error e -> fail "%s: %s" path e
    | Ok spec -> (
        match Check.Audit.run spec with
        | Error e -> fail "%s: %s" path e
        | Ok report ->
            print_string
              (Check.Json.to_string ~minify (Check.Audit.to_json report));
            if Check.Audit.ok report then `Ok ()
            else
              `Error
                ( false,
                  Printf.sprintf "audit failed: %s"
                    (String.concat "; " (Check.Audit.problems report)) ))
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DESIGN" ~doc:"A design spec file (pindisk-design v1).")
  in
  let minify =
    Arg.(value & flag & info [ "minify" ] ~doc:"Single-line JSON output.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Statically audit a design: re-verify every fault level, validate \
          the algebra's derivation traces with the independent kernel, check \
          IDA dispersal matrices for the MDS property, and classify the \
          exact density")
    Term.(ret (const (fun () -> run) $ setup_logs $ path $ minify))

(* ---------------- serve / receive ---------------- *)

(* A broadcast stream is a line protocol, one line per slot:
     pindisk-stream v1
     meta <file> <m> <capacity> <length>     (per file)
     slot <t> <file> <piece-index> <hex>     (busy slot)
     slot <t> .                              (idle slot)
   so `pindisk serve ... | pindisk receive --file 0` demonstrates the
   whole system across a pipe. *)

let hex_of_bytes b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let bytes_of_hex s =
  if String.length s mod 2 <> 0 then invalid_arg "odd hex length";
  Bytes.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let parse_content i s =
  (* NAME:BLOCKS:LATENCY[:TOL]=TEXT -- the file spec plus its payload. *)
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad content %S (want SPEC=TEXT)" s)
  | Some eq -> (
      let spec = String.sub s 0 eq in
      let text = String.sub s (eq + 1) (String.length s - eq - 1) in
      match parse_file i spec with
      | Ok f -> Ok (f, Bytes.of_string text)
      | Error e -> Error e)

let serve_cmd =
  let run contents slots =
    match collect parse_content contents with
    | Error e -> fail "%s" e
    | Ok pairs -> (
        let files = List.map fst pairs in
        match Program.auto files with
        | None -> fail "not schedulable"
        | Some (_, program) ->
            let module Ida = Pindisk_ida.Ida in
            let transport =
              Pindisk_sim.Transport.create ~program
                (List.map
                   (fun (f, content) ->
                     (f.File_spec.id, f.File_spec.blocks, content))
                   pairs)
            in
            print_endline "pindisk-stream v1";
            List.iter
              (fun (f, content) ->
                Printf.printf "meta %d %d %d %d\n" f.File_spec.id
                  f.File_spec.blocks f.File_spec.capacity
                  (Bytes.length content))
              pairs;
            for t = 0 to slots - 1 do
              match Pindisk_sim.Transport.on_air transport t with
              | None -> Printf.printf "slot %d .\n" t
              | Some (file, piece) ->
                  Printf.printf "slot %d %d %d %s\n" t file piece.Ida.index
                    (hex_of_bytes piece.Ida.data)
            done;
            `Ok ())
  in
  let contents =
    Arg.(
      non_empty & opt_all string []
      & info [ "c"; "content" ] ~docv:"SPEC=TEXT"
          ~doc:"A file spec plus payload, e.g. alerts:2:4:2=the-text.")
  in
  let slots =
    Arg.(value & opt int 64 & info [ "slots" ] ~doc:"Number of slots to emit.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Broadcast IDA-dispersed content as a line stream on stdout")
    Term.(ret (const (fun () -> run) $ setup_logs $ contents $ slots))

let receive_cmd =
  let run file loss seed =
    let module Ida = Pindisk_ida.Ida in
    let rng = Random.State.make [| seed |] in
    let metas = Hashtbl.create 4 in
    let collected = Hashtbl.create 8 in
    let dropped = ref 0 and seen = ref 0 in
    let result = ref None in
    (try
       (match input_line stdin with
       | "pindisk-stream v1" -> ()
       | other -> failwith (Printf.sprintf "unknown stream header %S" other));
       while !result = None do
         let line = input_line stdin in
         match String.split_on_char ' ' line with
         | [ "meta"; f; m; cap; len ] ->
             Hashtbl.replace metas (int_of_string f)
               (int_of_string m, int_of_string cap, int_of_string len)
         | [ "slot"; _; "." ] -> ()
         | [ "slot"; _; f; idx; payload ] ->
             let f = int_of_string f in
             if f = file then begin
               incr seen;
               if Random.State.float rng 1.0 < loss then incr dropped
               else begin
                 let idx = int_of_string idx in
                 if not (Hashtbl.mem collected idx) then
                   Hashtbl.replace collected idx
                     { Ida.index = idx; data = bytes_of_hex payload };
                 let m, _, len =
                   match Hashtbl.find_opt metas file with
                   | Some meta -> meta
                   | None -> failwith "block before meta"
                 in
                 if Hashtbl.length collected >= m then begin
                   let ida = Ida.create ~m in
                   let pieces = Hashtbl.fold (fun _ p acc -> p :: acc) collected [] in
                   result := Some (Ida.reconstruct ida ~length:len pieces)
                 end
               end
             end
         | _ -> failwith (Printf.sprintf "bad stream line %S" line)
       done
     with End_of_file -> ());
    match !result with
    | Some bytes ->
        Format.eprintf "reconstructed %d bytes from %d receptions (%d dropped)@."
          (Bytes.length bytes) (!seen - !dropped) !dropped;
        print_string (Bytes.to_string bytes);
        print_newline ();
        `Ok ()
    | None -> fail "stream ended before %d distinct pieces arrived" file
  in
  let file =
    Arg.(required & opt (some int) None & info [ "file" ] ~doc:"File id to reconstruct.")
  in
  let loss =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"Reception loss probability.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Loss seed.") in
  Cmd.v
    (Cmd.info "receive"
       ~doc:"Reconstruct one file from a broadcast stream on stdin")
    Term.(ret (const (fun () -> run) $ setup_logs $ file $ loss $ seed))

(* ---------------- metrics plumbing ---------------- *)

module Obs = Pindisk_obs

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Enable the observability layer for this run and write the final \
           metrics snapshot (pindisk-metrics v1 JSON) to $(docv).")

let snapshot_string ?minify () =
  Pindisk_check.Json.to_string ?minify
    (Pindisk_check.Metrics.snapshot_to_json (Obs.Snapshot.take ()))

(* Enable + reset before the run so the snapshot covers exactly this
   command; written even when the run itself reports an error, since a
   partial snapshot is still worth keeping. *)
let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
      Obs.Control.set_enabled true;
      Obs.Snapshot.reset ();
      let result = f () in
      let oc = open_out path in
      output_string oc (snapshot_string ());
      close_out oc;
      result

(* ---------------- stats ---------------- *)

let stats_cmd =
  (* A small, fully seeded end-to-end exercise of the broadcast pipeline —
     designer output, engine workload, IDA transport retrievals — so every
     instrumented layer contributes counters, histograms and trace events.
     Deterministic: the emitted snapshot is byte-stable across runs, which
     the cram test relies on. *)
  let canned () =
    let files =
      [
        File_spec.make ~name:"alerts" ~id:0 ~blocks:2 ~latency:8 ~tolerance:1 ();
        File_spec.make ~name:"map" ~id:1 ~blocks:4 ~latency:16 ~tolerance:0 ();
      ]
    in
    match Program.auto files with
    | None -> fail "internal: canned stats workload not schedulable"
    | Some (b, program) ->
        let spec id = List.nth files id in
        let trace =
          Pindisk_sim.Workload.generate ~program ~rate:0.05 ~theta:0.9
            ~needed_of:(fun id -> (spec id).File_spec.blocks)
            ~deadline_of:(fun id -> File_spec.window (spec id) ~bandwidth:b)
            ~horizon:500 ~seed:3
        in
        ignore
          (Pindisk_sim.Engine.run ~program
             ~fault:(fun ~seed -> Pindisk_sim.Fault.bernoulli ~p:0.1 ~seed)
             ~seed:5 trace);
        let content id len =
          Bytes.init len (fun i -> Char.chr (((id * 31) + (i * 7) + 3) land 0xff))
        in
        let transport =
          Pindisk_sim.Transport.create ~program
            [ (0, 2, content 0 96); (1, 4, content 1 200) ]
        in
        List.iter
          (fun file ->
            ignore
              (Pindisk_sim.Transport.retrieve transport ~file ~start:0
                 ~fault:(Pindisk_sim.Fault.bernoulli ~p:0.2 ~seed:(9 + file))
                 ()))
          [ 0; 1 ];
        `Ok ()
  in
  let run check minify =
    match check with
    | Some path -> (
        let contents =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Pindisk_check.Metrics.snapshot_of_string contents with
        | Error e -> fail "%s: %s" path e
        | Ok snap ->
            print_string
              (Pindisk_check.Json.to_string ~minify
                 (Pindisk_check.Metrics.snapshot_to_json snap));
            `Ok ())
    | None -> (
        Obs.Control.set_enabled true;
        Obs.Snapshot.reset ();
        match canned () with
        | `Ok () ->
            print_string (snapshot_string ~minify ());
            `Ok ()
        | err -> err)
  in
  let check =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"SNAPSHOT"
          ~doc:
            "Instead of running, parse a previously written metrics snapshot \
             and re-print it (a lossless round-trip: output is byte-identical \
             to what $(b,pindisk stats) or $(b,--metrics) emitted).")
  in
  let minify =
    Arg.(value & flag & info [ "minify" ] ~doc:"Single-line JSON output.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Exercise the pipeline with the observability layer enabled and \
          print the metrics snapshot as JSON")
    Term.(ret (const (fun () -> run) $ setup_logs $ check $ minify))

(* ---------------- adapt ---------------- *)

(* Closed-loop adaptive degradation demo: a static AIDA server and the
   adaptive controller (loss estimator -> hysteresis policy -> degradation
   ladder -> cycle-boundary hot-swap) run the same request trace over the
   same scripted channel; the report shows per-phase miss ratios and the
   swap log. *)

let adapt_cmd =
  let module Item = Pindisk_rtdb.Item in
  let module Mode = Pindisk_rtdb.Mode in
  let module Aida = Pindisk_ida.Aida in
  let module Adapt = Pindisk_adapt in
  let parse_phase s =
    (* LEN:RATE -- a channel segment of LEN slots at stationary loss RATE,
       realized as a Gilbert-Elliott chain. *)
    match String.split_on_char ':' s with
    | [ len; rate ] -> (
        match (int_of_string_opt len, float_of_string_opt rate) with
        | Some len, Some rate when len > 0 && rate >= 0.0 && rate <= 0.75 ->
            Ok (len, rate)
        | _ -> Error (Printf.sprintf "bad phase %S (want LEN:RATE, rate <= 0.75)" s))
    | _ -> Error (Printf.sprintf "bad phase %S (want LEN:RATE)" s)
  in
  let run phases rate seed bucket metrics =
    with_metrics metrics @@ fun () ->
    let phases = if phases = [] then [ "4000:0.01"; "6000:0.4"; "6000:0.01" ] else phases in
    if rate <= 0.0 then fail "request rate must be positive"
    else if bucket < 1 then fail "bucket must be >= 1"
    else
    match collect (fun _ s -> parse_phase s) phases with
    | Error e -> fail "%s" e
    | Ok phases ->
        let items =
          [
            Item.make ~id:0 ~name:"alerts" ~blocks:2 ~avi:4 ~value:100 ();
            Item.make ~id:1 ~name:"telemetry" ~blocks:3 ~avi:8 ~value:30 ();
            Item.make ~id:2 ~name:"map" ~blocks:6 ~avi:24 ~value:10 ();
            Item.make ~id:3 ~name:"feed" ~blocks:8 ~avi:48 ~value:1 ();
          ]
        in
        let cruise =
          Mode.make ~name:"cruise" ~default:Aida.Non_real_time
            [
              ("alerts", Aida.Critical 2);
              ("telemetry", Aida.Standard);
              ("map", Aida.Standard);
            ]
        in
        let essential =
          Mode.make ~name:"essential" ~default:Aida.Non_real_time
            [ ("alerts", Aida.Critical 2); ("telemetry", Aida.Standard) ]
        in
        let bandwidth = 4 in
        let ladder =
          Adapt.Ladder.create ~fallbacks:[ essential ] ~max_boost:3 ~bandwidth
            ~base_mode:cruise items
        in
        let policy =
          Adapt.Policy.create ~dwell:3
            [
              Adapt.Policy.level "clear";
              Adapt.Policy.level ~boost:1 ~enter:0.10 ~exit:0.05 "degraded";
              Adapt.Policy.level ~boost:2 ~enter:0.25 ~exit:0.15 "storm";
            ]
        in
        let estimator = Adapt.Estimator.create ~alpha:0.6 ~window:32 () in
        let ctl = Adapt.Controller.create ~estimator ~policy ladder in
        let baseline = (Adapt.Controller.plan ctl).Adapt.Ladder.program in
        let script =
          List.mapi
            (fun i (length, loss) ->
              {
                Adapt.Driver.length;
                fault =
                  Pindisk_sim.Fault.burst ~p_good_to_bad:0.3 ~p_bad_to_good:0.1
                    ~loss_good:0.0 ~loss_bad:(loss /. 0.75) ~seed:(seed + i);
              })
            phases
        in
        let losses = Adapt.Driver.losses script in
        let horizon = Array.length losses in
        let trace =
          Pindisk_sim.Workload.generate ~program:baseline ~rate ~theta:0.9
            ~needed_of:(fun id -> (List.nth items id).Item.blocks)
            ~deadline_of:(fun id -> bandwidth * (List.nth items id).Item.avi)
            ~horizon ~seed:(seed + 100)
        in
        let static = Adapt.Driver.run ~bucket ~program:baseline ~losses trace in
        let adaptive =
          Adapt.Driver.run ~bucket ~controller:ctl ~program:baseline ~losses trace
        in
        Format.printf "bandwidth %d blocks/sec; %d requests over %d slots@."
          bandwidth (List.length trace) horizon;
        Format.printf "%-24s %10s %10s@." "phase (slots at rate)" "static"
          "adaptive";
        let t0 = ref 0 in
        List.iter
          (fun (len, loss) ->
            let t1 = !t0 + len in
            Format.printf "%-24s %9.1f%% %9.1f%%@."
              (Printf.sprintf "%d..%d @ %.0f%%" !t0 t1 (100.0 *. loss))
              (100.0 *. Adapt.Driver.window_miss_ratio static ~t0:!t0 ~t1)
              (100.0 *. Adapt.Driver.window_miss_ratio adaptive ~t0:!t0 ~t1);
            t0 := t1)
          phases;
        Format.printf "%-24s %9.1f%% %9.1f%%@." "overall"
          (100.0 *. Adapt.Driver.miss_ratio static)
          (100.0 *. Adapt.Driver.miss_ratio adaptive);
        Format.printf "swap log:@.";
        if adaptive.Adapt.Driver.swaps = [] then Format.printf "  (no swaps)@."
        else
          List.iter
            (fun e -> Format.printf "  %a@." Adapt.Swap.pp_entry e)
            adaptive.Adapt.Driver.swaps;
        `Ok ()
  in
  let phases =
    Arg.(
      value & opt_all string []
      & info [ "p"; "phase" ] ~docv:"LEN:RATE"
          ~doc:
            "A channel segment: LEN slots at stationary loss RATE (repeat \
             for a script; default 4000:0.01 6000:0.4 6000:0.01).")
  in
  let rate =
    Arg.(
      value & opt float 0.08
      & info [ "rate" ] ~doc:"Request arrival rate per slot.")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Random seed.") in
  let bucket =
    Arg.(value & opt int 500 & info [ "bucket" ] ~doc:"Timeline bucket in slots.")
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:"Closed-loop adaptive degradation vs a static server")
    Term.(
      ret
        (const (fun () -> run)
        $ setup_logs $ phases $ rate $ seed $ bucket $ metrics_arg))

(* ---------------- simulate ---------------- *)

module Cohort = Pindisk_sim.Cohort
module SimEngine = Pindisk_sim.Engine
module SimStats = Pindisk_util.Stats

(* Closed-form cohort run: [clients] spread uniformly over every file at
   up to 16 phases across the period, folded analytically under
   Bernoulli loss. No RNG anywhere, so the output is a stable golden
   (exercised by test/cli/cohort.t). *)
let simulate_cohort ~program ~bandwidth ~loss ~seed ~clients files =
  let plan = P.Plan.explicit (Program.schedule program) in
  let period = P.Plan.period plan in
  let capacities =
    List.map
      (fun f -> (f.File_spec.id, Program.capacity program f.File_spec.id))
      files
  in
  let phases = min period 16 in
  let per_class = max 1 (clients / (List.length files * phases)) in
  let classes =
    List.concat_map
      (fun f ->
        List.init phases (fun i ->
            {
              Cohort.key =
                {
                  Cohort.file = f.File_spec.id;
                  phase = i * (period / phases);
                  needed = f.File_spec.blocks;
                  deadline = File_spec.window f ~bandwidth;
                };
              weight = per_class;
            }))
      files
  in
  let r =
    Cohort.run_population ~plan ~capacities
      ~model:(Cohort.Bernoulli { p = loss })
      ~seed classes
  in
  Format.printf "cohort: %d clients in %d classes (analytic fold)@."
    r.SimEngine.requests (List.length classes);
  Format.printf "  %-12s %9s %9s %9s %9s@." "file" "requests" "missed"
    "miss%" "mean wait";
  List.iter
    (fun f ->
      match
        List.find_opt
          (fun (pf : SimEngine.file_stats) -> pf.SimEngine.file = f.File_spec.id)
          r.SimEngine.per_file
      with
      | None -> ()
      | Some pf ->
          Format.printf "  %-12s %9d %9d %8.1f%% %9.2f@." f.File_spec.name
            pf.SimEngine.requests pf.SimEngine.missed
            (100.0 *. SimEngine.file_miss_ratio pf)
            (SimStats.mean pf.SimEngine.latency))
    files;
  Format.printf "  %-12s %9d %9d %8.1f%% %9.2f@." "overall" r.SimEngine.requests
    r.SimEngine.missed
    (100.0 *. SimEngine.miss_ratio r)
    (SimStats.mean r.SimEngine.latency);
  Format.printf "  losses absorbed: %d@." r.SimEngine.losses

(* The sharded analogue of [simulate_cohort]: members spread over every
   file (admitted or shed — a shed file's clients all miss) at up to 16
   phases, folded per channel. Analytic under Bernoulli, so the output
   is a stable golden (test/cli/multichannel.t). *)
let simulate_multi_cohort ~design ~tuners ~loss ~seed ~clients files =
  let phases = 16 in
  let per_class = max 1 (clients / (List.length files * phases)) in
  let members =
    List.concat_map
      (fun f ->
        List.init phases (fun i ->
            {
              Multi.issued = i;
              file = f.File_spec.id;
              needed = f.File_spec.blocks;
              deadline = File_spec.window f ~bandwidth:design.Shard.bandwidth;
              weight = per_class;
            }))
      files
  in
  let r =
    Multi.run_population ~design ~tuners
      ~model:(fun ~channel:_ -> Pindisk_sim.Cohort.Bernoulli { p = loss })
      ~seed members
  in
  Format.printf "cohort: %d clients in %d classes (per-channel fold)@."
    r.SimEngine.requests (List.length members);
  Format.printf "  %-12s %9s %9s %9s %9s@." "file" "requests" "missed" "miss%"
    "mean wait";
  List.iter
    (fun f ->
      match
        List.find_opt
          (fun (pf : SimEngine.file_stats) ->
            pf.SimEngine.file = f.File_spec.id)
          r.SimEngine.per_file
      with
      | None -> ()
      | Some pf ->
          Format.printf "  %-12s %9d %9d %8.1f%% %9.2f@." f.File_spec.name
            pf.SimEngine.requests pf.SimEngine.missed
            (100.0 *. SimEngine.file_miss_ratio pf)
            (SimStats.mean pf.SimEngine.latency))
    files;
  Format.printf "  %-12s %9d %9d %8.1f%% %9.2f@." "overall"
    r.SimEngine.requests r.SimEngine.missed
    (100.0 *. SimEngine.miss_ratio r)
    (SimStats.mean r.SimEngine.latency);
  Format.printf "  losses absorbed: %d@." r.SimEngine.losses

(* Per-request sampled run over the sharded design: [trials] clients per
   file, issue slots spread one per slot, per-channel fault processes. *)
let simulate_multi_trials ~design ~tuners ~loss ~trials ~seed files =
  let trace =
    List.concat_map
      (fun f ->
        List.init trials (fun k ->
            {
              Pindisk_sim.Workload.issued = k;
              file = f.File_spec.id;
              needed = f.File_spec.blocks;
              deadline = File_spec.window f ~bandwidth:design.Shard.bandwidth;
            }))
      files
  in
  let r =
    Multi.run ~design ~tuners
      ~fault:(fun ~channel:_ ~seed -> Pindisk_sim.Fault.bernoulli ~p:loss ~seed)
      ~seed trace
  in
  List.iter
    (fun f ->
      match
        List.find_opt
          (fun (pf : SimEngine.file_stats) ->
            pf.SimEngine.file = f.File_spec.id)
          r.SimEngine.per_file
      with
      | None -> ()
      | Some pf ->
          Format.printf "  %-12s %9d %9d %8.1f%% %9.2f@." f.File_spec.name
            pf.SimEngine.requests pf.SimEngine.missed
            (100.0 *. SimEngine.file_miss_ratio pf)
            (SimStats.mean pf.SimEngine.latency))
    files;
  Format.printf "  %-12s %9d %9d %8.1f%% %9.2f@." "overall"
    r.SimEngine.requests r.SimEngine.missed
    (100.0 *. SimEngine.miss_ratio r)
    (SimStats.mean r.SimEngine.latency)

let simulate_multichannel ~channels ~tuners ~loss ~trials ~seed ~cohort
    ~clients files =
  let bandwidth = shard_bandwidth files in
  match Shard.design ~channels ~bandwidth files with
  | Error e -> fail "%s" e
  | Ok design ->
      Format.printf
        "channels %d, per-channel bandwidth %d, tuners %d, loss rate %.0f%%@."
        channels bandwidth tuners (100.0 *. loss);
      Format.printf "%a@." Shard.pp design;
      let check = Shardcheck.run design in
      (match Shardcheck.problems check with
      | [] -> Format.printf "shardcheck: ok@."
      | ps -> List.iter (fun p -> Format.printf "shardcheck: %s@." p) ps);
      if cohort then
        simulate_multi_cohort ~design ~tuners ~loss ~seed ~clients files
      else simulate_multi_trials ~design ~tuners ~loss ~trials ~seed files;
      `Ok ()

let simulate_cmd =
  let run files loss trials seed cohort clients channels tuners metrics =
    with_metrics metrics @@ fun () ->
    match collect parse_file files with
    | Error e -> fail "%s" e
    | Ok _ when channels < 1 -> fail "channels must be >= 1"
    | Ok _ when tuners < 1 -> fail "tuners must be >= 1"
    | Ok files when channels > 1 ->
        simulate_multichannel ~channels ~tuners ~loss ~trials ~seed ~cohort
          ~clients files
    | Ok files -> (
        match Program.auto files with
        | None -> fail "not schedulable"
        | Some (b, program) ->
            Format.printf "bandwidth %d, period %d, loss rate %.0f%%@." b
              (Program.period program) (100.0 *. loss);
            if cohort then simulate_cohort ~program ~bandwidth:b ~loss ~seed ~clients files
            else
              List.iter
                (fun f ->
                  let summary =
                    Pindisk_sim.Experiment.run ~program ~file:f.File_spec.id
                      ~needed:f.File_spec.blocks
                      ~deadline:(File_spec.window f ~bandwidth:b)
                      ~fault:(fun ~seed -> Pindisk_sim.Fault.bernoulli ~p:loss ~seed)
                      ~trials ~seed ()
                  in
                  Format.printf "  %-12s %a@." f.File_spec.name
                    Pindisk_sim.Experiment.pp_summary summary)
                files;
            `Ok ())
  in
  let loss =
    Arg.(value & opt float 0.1 & info [ "loss" ] ~doc:"Block loss probability.")
  in
  let trials =
    Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Clients per file.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let cohort =
    Arg.(
      value & flag
      & info [ "cohort" ]
          ~doc:
            "Simulate a closed-form client population by weighted \
             equivalence classes (analytic fold) instead of per-client \
             trials.")
  in
  let clients =
    Arg.(
      value & opt int 100_000
      & info [ "clients" ] ~doc:"Population size for $(b,--cohort).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Stochastic retrieval simulation")
    Term.(
      ret
        (const (fun () -> run)
        $ setup_logs $ files_arg $ loss $ trials $ seed $ cohort $ clients
        $ channels_arg $ tuners_arg $ metrics_arg))

(* ---------------- chaos ---------------- *)

(* The multi-channel outage drill: shard a canned population over K
   channels, certify it, kill channel 0, evacuate through the ladder's
   Migrate rung, and certify the surviving design (stranded files shed).
   Deterministic end to end. *)
let chaos_channels channels =
  let files =
    List.init 8 (fun i ->
        File_spec.make
          ~name:(Printf.sprintf "f%d" i)
          ~id:i ~blocks:2 ~latency:8
          ~tolerance:(if i < 2 then 2 else 0)
          ())
  in
  match Shard.design ~channels ~bandwidth:1 files with
  | Error e -> fail "%s" e
  | Ok design -> (
      Format.printf "drill: %d files over %d channels@." (List.length files)
        channels;
      Format.printf "%a@." Shard.pp design;
      let before = Shardcheck.run design in
      Format.printf "shardcheck before outage: %s@."
        (if Shardcheck.ok before then "ok" else "VIOLATED");
      let rungs, stranded = Pindisk_adapt.Ladder.evacuate design ~channel:0 in
      Format.printf "channel 0 fails: %d migration(s), %d stranded@."
        (List.length rungs) (List.length stranded);
      List.iter
        (fun r -> Format.printf "  %a@." Pindisk_adapt.Ladder.pp_rung r)
        rungs;
      let survivors =
        List.filter
          (fun (f : File_spec.t) ->
            (not (List.mem f.File_spec.id stranded))
            && List.exists
                 (fun (p : Shard.placement) -> p.Shard.file = f.File_spec.id)
                 design.Shard.placements)
          files
      in
      match Shard.design ~channels:(channels - 1) ~bandwidth:1 survivors with
      | Error e -> fail "re-design failed: %s" e
      | Ok recovered ->
          let after = Shardcheck.run recovered in
          Format.printf
            "recovered design: %d channel(s), %d file(s) served, %d shed@."
            (channels - 1)
            (List.length recovered.Shard.specs)
            (List.length recovered.Shard.shed);
          if Shardcheck.ok before && Shardcheck.ok after then begin
            Format.printf "drill: recovery certified@.";
            `Ok ()
          end
          else fail "drill: recovered design fails certification")

let chaos_cmd =
  let module Scenario = Pindisk_store.Scenario in
  let summary_line r =
    let open Scenario in
    Printf.sprintf "| %s | %s | %d | %d | %d | %d | %s |" r.spec.name
      (if Scenario.ok r then "ok" else "VIOLATED")
      r.crashes r.down r.faulted r.replayed
      (match r.recovery_slots with
      | [] -> "-"
      | l -> String.concat ", " (List.map string_of_int l))
  in
  let write_summary path reports =
    let oc = open_out path in
    output_string oc "# Chaos scenario suite\n\n";
    output_string oc
      "| scenario | verdict | crashes | down slots | faulted slots | \
       replayed slots | recovery (slots) |\n";
    output_string oc "|---|---|---|---|---|---|---|\n";
    List.iter (fun r -> output_string oc (summary_line r ^ "\n")) reports;
    let violations =
      List.concat_map (fun r -> r.Scenario.violations) reports
    in
    if violations <> [] then begin
      output_string oc "\n## Violations\n\n";
      List.iter (fun v -> output_string oc ("- " ^ v ^ "\n")) violations
    end;
    close_out oc
  in
  let run list only summary channels metrics =
    with_metrics metrics @@ fun () ->
    if channels > 1 then chaos_channels channels
    else if list then begin
      List.iter
        (fun s -> Format.printf "%s@." s.Scenario.name)
        (Scenario.suite ());
      `Ok ()
    end
    else
      let specs =
        match only with
        | None -> Scenario.suite ()
        | Some name ->
            List.filter
              (fun s -> s.Scenario.name = name)
              (Scenario.suite ())
      in
      if specs = [] then fail "no such scenario"
      else begin
        let reports = List.map Scenario.run specs in
        List.iter (fun r -> Format.printf "%a@." Scenario.pp_report r) reports;
        Option.iter (fun path -> write_summary path reports) summary;
        if List.for_all Scenario.ok reports then begin
          Format.printf "chaos: %d scenario(s), 0 invariant violations@."
            (List.length reports);
          `Ok ()
        end
        else fail "chaos: invariant violations detected"
      end
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List scenario names and exit.")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Run a single scenario.")
  in
  let summary =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:"Write a markdown recovery summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Scripted fault-injection scenarios with recovery invariants")
    Term.(
      ret (const (fun () -> run) $ setup_logs $ list $ only $ summary
           $ channels_arg $ metrics_arg))

let () =
  let info =
    Cmd.info "pindisk" ~version:"1.0.0"
      ~doc:"Pinwheel scheduling for fault-tolerant broadcast disks"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            schedule_cmd;
            sched_bench_cmd;
            bandwidth_cmd;
            program_cmd;
            convert_cmd;
            simulate_cmd;
            adapt_cmd;
            stats_cmd;
            analyze_cmd;
            export_cmd;
            inspect_cmd;
            design_cmd;
            audit_cmd;
            serve_cmd;
            receive_cmd;
            chaos_cmd;
          ]))
