(* pindisk-lint: the static counterpart to `pindisk audit`.

   Parses every .ml under the given paths with compiler-libs and
   enforces the committed per-directory policy (lint.config) modulo the
   committed expiring baseline (lint.baseline). Exit convention shared
   with bench_gate: 0 clean, 1 findings or stale baseline entries,
   2 usage/parse errors.

     pindisk-lint [--root DIR] [--config F] [--baseline F]
                  [--today YYYY-MM-DD] [--json] [--summary OUT.md
                  [--append]] [PATH ...]

   PATHs default to lib bin bench scripts. --today pins baseline-expiry
   evaluation for reproducible runs (cram tests, CI); otherwise the
   current date is used. *)

module Lint = Pindisk_lint
module Summary = Pindisk_report.Summary

let usage () =
  prerr_endline
    "usage: pindisk-lint [--root DIR] [--config F] [--baseline F]\n\
    \                    [--today YYYY-MM-DD] [--json]\n\
    \                    [--summary OUT.md [--append]] [PATH ...]";
  exit 2

let parse_args () =
  let root = ref "." and config = ref "lint.config" in
  let baseline = ref "lint.baseline" and baseline_given = ref false in
  let today = ref "" and json = ref false in
  let summary = ref "" and append = ref false in
  let paths = ref [] in
  let rec go = function
    | [] -> ()
    | "--root" :: v :: rest -> root := v; go rest
    | "--config" :: v :: rest -> config := v; go rest
    | "--baseline" :: v :: rest ->
        baseline := v;
        baseline_given := true;
        go rest
    | "--today" :: v :: rest -> today := v; go rest
    | "--json" :: rest -> json := true; go rest
    | "--summary" :: v :: rest -> summary := v; go rest
    | "--append" :: rest -> append := true; go rest
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        Printf.eprintf "pindisk-lint: unknown option %s\n" a;
        usage ()
    | p :: rest -> paths := p :: !paths; go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let paths =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "scripts" ]
    | ps -> ps
  in
  ( !root, !config, !baseline, !baseline_given, !today, !json, !summary,
    !append, paths )

let today_default () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let () =
  let ( root, config_p, baseline_p, baseline_given, today, json, summary_p,
        append, paths ) =
    parse_args ()
  in
  let today = if today = "" then today_default () else today in
  if not (Lint.Baseline.valid_date today) then
    fail "pindisk-lint: --today %S is not a YYYY-MM-DD date" today;
  let config =
    match Lint.Config.load config_p with
    | Ok c -> c
    | Error e -> fail "pindisk-lint: %s: %s" config_p e
  in
  let baseline =
    (* The default baseline path may simply not exist yet (a clean tree
       needs none); an explicitly given one must parse. *)
    if (not baseline_given) && not (Sys.file_exists baseline_p) then []
    else
      match Lint.Baseline.load baseline_p with
      | Ok b -> b
      | Error e -> fail "pindisk-lint: %s: %s" baseline_p e
  in
  let sources =
    match Lint.Driver.load_tree ~root ~paths with
    | Ok s -> s
    | Error e -> fail "pindisk-lint: %s" e
  in
  if sources = [] then fail "pindisk-lint: no .ml files under %s" root;
  let outcome = Lint.Driver.run ~config ~baseline ~today ~sources in
  if json then
    print_string (Pindisk_check.Json.to_string (Lint.Report.to_json outcome))
  else Lint.Report.print_text Format.std_formatter outcome;
  if summary_p <> "" then
    Summary.with_summary ~path:summary_p ~append ~title:"Lint gate"
      (fun oc ->
        Printf.fprintf oc "## pindisk-lint (%s, baseline as of %s)\n\n"
          config_p today;
        let rows = Lint.Report.summary_rows outcome in
        if rows = [] then
          Printf.fprintf oc "%s\n\n" (Lint.Report.summary_line outcome)
        else
          Summary.table oc
            ~header:[ "rule"; "where"; "context"; "finding" ]
            rows);
  exit (Lint.Driver.exit_code outcome)
