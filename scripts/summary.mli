(** Shared gate-reporting glue for [bench_gate] and [pindisk-lint]: the
    markdown summary artifact (create or append), table emission, and
    the shared exit convention (0 clean, 1 failures, 2 usage/IO
    error). *)

val with_summary :
  path:string -> append:bool -> title:string -> (out_channel -> unit) -> unit
(** Open the summary file (truncating, or appending when several gates
    share one artifact), write ["# title"] on a fresh file, run the
    body, and close — also on exceptions. *)

val table : out_channel -> header:string list -> string list list -> unit
(** A GitHub-flavored markdown table followed by a blank line. *)

val conclude :
  tool:string -> subject:string -> failures:int -> total:int -> noun:string -> unit
(** Print the one-line verdict ([tool: subject ok (N noun)]) on stdout,
    or the failure count on stderr and [exit 1]. *)
