(* Benchmark-regression gate.

   Compares a fresh quick-mode benchmark artifact (BENCH_sched.json /
   BENCH_codec.json) against the committed baseline in bench/baselines/
   and exits non-zero when a headline metric regresses beyond the
   tolerance band. Run by `make bench-gate` and by the bench-gate CI job.

   Only scale-free ratios are gated — speedups and memory ratios — never
   raw ns/slot or MB/s, which vary wildly across runner hardware. Each
   metric additionally carries a fixed floor from the acceptance criteria
   (e.g. online dispatch must beat eager materialization >= 10x at
   n >= 1024), so a slow-but-uniform runner cannot mask a real
   regression by dragging the baseline comparison down with it.

     bench_gate --kind sched --fresh BENCH_sched.json
                --baseline bench/baselines/BENCH_sched.baseline.json
                --summary bench_gate_summary.md [--append]
                [--tolerance 1.8] [--inject-slowdown 2.0]

   --inject-slowdown F divides every higher-is-better fresh metric by F
   before gating; CI uses it to prove the gate actually fails on a 2x
   slowdown (a gate that cannot fail gates nothing). *)

module Json = Pindisk_check.Json
module Summary = Pindisk_report.Summary

type direction = Higher_is_better | Lower_is_better

type check = {
  metric : string;
  dir : direction;
  floor : float option; (* absolute bound regardless of baseline *)
  gate_vs_baseline : bool; (* also compare against baseline/tolerance *)
  requires : string option;
      (* gate only when this fresh-artifact flag is nonzero; a metric the
         runner cannot meaningfully measure (e.g. multicore scaling on a
         single-core box) is reported but not enforced *)
}

let sched_checks =
  [
    { metric = "dispatch_speedup_n1024"; dir = Higher_is_better;
      floor = Some 10.0; gate_vs_baseline = true; requires = None };
    { metric = "dispatch_speedup_n4096"; dir = Higher_is_better;
      floor = Some 10.0; gate_vs_baseline = true; requires = None };
    (* Dispatcher memory must not follow the hyperperiod: a 256x deeper
       hyperperiod may cost the online state at most 1.5x. Pure
       structure, no baseline comparison needed. *)
    { metric = "online_memory_ratio_deep_over_base_n4096";
      dir = Lower_is_better; floor = Some 1.5; gate_vs_baseline = false;
      requires = None };
  ]

(* The floors trace the codec acceptance criteria at m=8 / 64 KiB: the
   engine must beat the seed codec >= 10x and the frozen v1 wide-table
   kernel >= 5x in the fault-tolerant shape (n=10, where the two coded
   rows still pay an op-bound SWAR sweep), >= 10x over v1 on the pure
   systematic shape (n=8, dispersal degenerates to blits), and 4-domain
   dispersal must scale >= 2x over 1-domain wherever the runner actually
   has the cores to show it. *)
let codec_checks =
  [
    { metric = "disperse_m8_64KiB_table_over_baseline";
      dir = Higher_is_better; floor = Some 1.5; gate_vs_baseline = true;
      requires = None };
    { metric = "disperse_m8_64KiB_engine_over_baseline";
      dir = Higher_is_better; floor = Some 10.0; gate_vs_baseline = true;
      requires = None };
    { metric = "disperse_m8_64KiB_engine_over_table";
      dir = Higher_is_better; floor = Some 5.0; gate_vs_baseline = true;
      requires = None };
    { metric = "disperse_m8n8_64KiB_engine_over_table";
      dir = Higher_is_better; floor = Some 10.0; gate_vs_baseline = true;
      requires = None };
    { metric = "disperse_m8_64KiB_scaling_4dom_over_1dom";
      dir = Higher_is_better; floor = Some 2.0; gate_vs_baseline = false;
      requires = Some "parallel_capable" };
  ]

(* Chaos metrics are slot-domain and fully deterministic under the fixed
   scenario seeds, so they gate identically on any runner. The floors
   come straight from the recovery invariants: zero violations ever;
   recovery bounded by restart + checkpoint cadence + lookahead
   (8 + 16 + 3); the 20%-fault retrieval tail within a small factor of
   the fault-free one. *)
let chaos_checks =
  [
    { metric = "violations_total"; dir = Lower_is_better; floor = Some 0.0;
      gate_vs_baseline = false; requires = None };
    { metric = "recovery_slots_f20"; dir = Lower_is_better; floor = Some 27.0;
      gate_vs_baseline = true; requires = None };
    { metric = "retrieval_latency_ratio_f20_over_f0"; dir = Lower_is_better;
      floor = Some 6.0; gate_vs_baseline = true; requires = None };
  ]

(* Cohort floors come from the E23 acceptance criteria: the analytic
   fold must simulate >= 10^6 clients per core per wall-second, and the
   in-bench spot-check (sampled Cohort.run vs Drive.run, several fault
   models and seeds) must agree byte-for-byte — cohort_equals_drive is
   1.0 or the gate fails. Throughput is floor-gated only, never compared
   against the baseline: raw clients/sec is hardware-dependent. *)
let cohort_checks =
  [
    { metric = "cohort_clients_per_sec_analytic"; dir = Higher_is_better;
      floor = Some 1e6; gate_vs_baseline = false; requires = None };
    { metric = "cohort_equals_drive"; dir = Higher_is_better;
      floor = Some 1.0; gate_vs_baseline = false; requires = None };
  ]

(* Multichannel floors come from the E24 acceptance criteria: four
   channels must serve >= 3x the files one channel serves (capacity
   scaling is the whole point of sharding), every sharded design must
   certify through Shardcheck (per-channel witnesses, cover,
   disjointness), and the K = 1 design must be byte-identical to the
   single-channel pipeline. All three are slot-domain deterministic, so
   they gate identically on any runner; raw clients/sec is reported in
   the artifact but never gated. *)
let multichannel_checks =
  [
    { metric = "aggregate_files_k4_over_k1"; dir = Higher_is_better;
      floor = Some 3.0; gate_vs_baseline = true; requires = None };
    { metric = "shard_coverage_ok"; dir = Higher_is_better;
      floor = Some 1.0; gate_vs_baseline = false; requires = None };
    { metric = "k1_identity_ok"; dir = Higher_is_better;
      floor = Some 1.0; gate_vs_baseline = false; requires = None };
  ]

let usage () =
  prerr_endline
    "usage: bench_gate --kind sched|codec|chaos|cohort|multichannel --fresh F \
     --baseline B --summary OUT.md [--append] [--tolerance R] \
     [--inject-slowdown F]";
  exit 2

let parse_args () =
  let kind = ref "" and fresh = ref "" and baseline = ref "" in
  let summary = ref "" and append = ref false in
  let tolerance = ref 1.8 and slowdown = ref 1.0 in
  let rec go = function
    | [] -> ()
    | "--kind" :: v :: rest -> kind := v; go rest
    | "--fresh" :: v :: rest -> fresh := v; go rest
    | "--baseline" :: v :: rest -> baseline := v; go rest
    | "--summary" :: v :: rest -> summary := v; go rest
    | "--append" :: rest -> append := true; go rest
    | "--tolerance" :: v :: rest -> tolerance := float_of_string v; go rest
    | "--inject-slowdown" :: v :: rest -> slowdown := float_of_string v; go rest
    | a :: _ -> Printf.eprintf "bench_gate: unknown argument %s\n" a; usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  if !kind = "" || !fresh = "" || !baseline = "" || !summary = "" then usage ();
  (!kind, !fresh, !baseline, !summary, !append, !tolerance, !slowdown)

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Printf.eprintf "bench_gate: %s: %s\n" path e; exit 2

let get_metric path j name =
  match Json.get_float name j with
  | Ok v -> v
  | Error _ ->
      Printf.eprintf "bench_gate: %s: missing headline metric %s\n" path name;
      exit 2

type row = {
  name : string;
  fresh_v : float;
  base_v : float;
  bound : float; (* the effective gate the fresh value is held to *)
  better : string; (* "higher" | "lower" *)
  ok : bool;
  skipped : bool; (* the runner cannot measure this metric; not enforced *)
}

let () =
  let kind, fresh_p, base_p, summary_p, append, tol, slowdown = parse_args () in
  let checks =
    match kind with
    | "sched" -> sched_checks
    | "codec" -> codec_checks
    | "chaos" -> chaos_checks
    | "cohort" -> cohort_checks
    | "multichannel" -> multichannel_checks
    | k -> Printf.eprintf "bench_gate: unknown kind %s\n" k; usage ()
  in
  let fresh = load fresh_p and base = load base_p in
  let rows =
    List.map
      (fun c ->
        let fv0 = get_metric fresh_p fresh c.metric in
        let bv = get_metric base_p base c.metric in
        let skipped =
          match c.requires with
          | None -> false
          | Some flag -> (
              (* Absent flag = old artifact = cannot vouch for the
                 capability; skip rather than fail spuriously. *)
              match Json.get_float flag fresh with
              | Ok v -> v = 0.0
              | Error _ -> true)
        in
        let fv =
          match c.dir with
          | Higher_is_better -> fv0 /. slowdown
          | Lower_is_better -> fv0 *. slowdown
        in
        match c.dir with
        | Higher_is_better ->
            (* Must clear the baseline within tolerance, and any floor. *)
            let bound =
              let vs_base = if c.gate_vs_baseline then bv /. tol else 0.0 in
              Float.max vs_base (Option.value c.floor ~default:0.0)
            in
            { name = c.metric; fresh_v = fv; base_v = bv; bound;
              better = "higher"; ok = skipped || fv >= bound; skipped }
        | Lower_is_better ->
            let bound =
              let vs_base =
                if c.gate_vs_baseline then bv *. tol else infinity
              in
              Float.min vs_base (Option.value c.floor ~default:infinity)
            in
            { name = c.metric; fresh_v = fv; base_v = bv; bound;
              better = "lower"; ok = skipped || fv <= bound; skipped })
      checks
  in
  let failed = List.filter (fun r -> not r.ok) rows in
  (* Markdown summary (uploaded as a CI artifact), via the reporting
     glue shared with pindisk-lint. *)
  Summary.with_summary ~path:summary_p ~append ~title:"Benchmark gate"
    (fun oc ->
      Printf.fprintf oc "## %s (%s vs %s, tolerance %.2fx%s)\n\n" kind fresh_p
        base_p tol
        (if slowdown <> 1.0 then
           Printf.sprintf ", injected slowdown %.2fx" slowdown
         else "");
      Summary.table oc
        ~header:[ "metric"; "fresh"; "baseline"; "gate"; "verdict" ]
        (List.map
           (fun r ->
             [
               r.name;
               Printf.sprintf "%.2f" r.fresh_v;
               Printf.sprintf "%.2f" r.base_v;
               Printf.sprintf "%s %.2f"
                 (if r.better = "higher" then ">=" else "<=")
                 r.bound;
               (if r.skipped then "skip (runner lacks capability)"
                else if r.ok then "pass"
                else "**FAIL**");
             ])
           rows));
  List.iter
    (fun r ->
      Printf.printf "bench_gate: %-45s fresh %8.2f  baseline %8.2f  gate %s %.2f  %s\n"
        r.name r.fresh_v r.base_v
        (if r.better = "higher" then ">=" else "<=")
        r.bound
        (if r.skipped then "skip" else if r.ok then "pass" else "FAIL"))
    rows;
  Summary.conclude ~tool:"bench_gate" ~subject:kind
    ~failures:(List.length failed) ~total:(List.length rows) ~noun:"metrics"
