(* Shared gate-reporting glue.

   bench_gate and pindisk-lint ship the same artifact shape — a
   markdown summary file CI uploads, created fresh or appended to when
   several gates share one artifact — and the same exit convention
   (0 clean, 1 findings/regressions, 2 usage or I/O error). The file
   handling, table emission and verdict live here so the two gates
   cannot drift apart. *)

let with_summary ~path ~append ~title f =
  let oc =
    open_out_gen
      (if append then [ Open_append; Open_creat ]
       else [ Open_trunc; Open_creat; Open_wronly ])
      0o644 path
  in
  if not append then Printf.fprintf oc "# %s\n\n" title;
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let table oc ~header rows =
  Printf.fprintf oc "| %s |\n" (String.concat " | " header);
  Printf.fprintf oc "|%s\n"
    (String.concat "" (List.map (fun _ -> "---|") header));
  List.iter
    (fun row -> Printf.fprintf oc "| %s |\n" (String.concat " | " row))
    rows;
  output_char oc '\n'

(* Print the one-line verdict and exit 1 on failure. [noun] names what
   was gated ("metrics", "findings"). *)
let conclude ~tool ~subject ~failures ~total ~noun =
  if failures > 0 then begin
    Printf.eprintf "%s: %d/%d %s %s failed the gate\n" tool failures total
      subject noun;
    exit 1
  end;
  Printf.printf "%s: %s ok (%d %s)\n" tool subject total noun
